// Package client is the typed Go client of the sparseadaptd HTTP API: it
// submits jobs, polls status, streams Server-Sent Events and decodes the
// wire types of package server. The `sparseadapt submit` subcommand and
// the daemon's end-to-end tests are built on it, so the client exercises
// exactly the surface external consumers would.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparseadapt/internal/matrix"
	"sparseadapt/internal/server"
)

// Client talks to one sparseadaptd instance.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport; nil uses a client with a 30s overall timeout
	// for unary calls (streams always use a timeout-free clone, since an
	// SSE response legitimately outlives any fixed deadline).
	HTTP *http.Client
	// Retry governs automatic retry of transiently rejected submissions.
	// The zero value never retries (single-shot, the historical behavior).
	Retry RetryPolicy
	// StallTimeout aborts an event stream when no bytes arrive for this
	// long. The server emits a keepalive comment every 15s by default, so
	// anything comfortably above that (say 45s+) distinguishes a wedged
	// proxy or half-open TCP connection from a merely quiet job. Zero
	// disables the watchdog (the historical behavior).
	StallTimeout time.Duration
}

// ErrStreamStalled is returned by Stream when the stall watchdog fired:
// the connection stopped delivering bytes (not even keepalives) for
// longer than StallTimeout. Wait treats it like any stream failure and
// falls back to polling.
var ErrStreamStalled = errors.New("client: event stream stalled")

// RetryPolicy makes Submit retry transient rejections — 429 (rate limit,
// queue full) and 503 (circuit breaker open, journal hiccup) — honoring
// the server's Retry-After hint when present and falling back to capped
// exponential backoff when not.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying entirely.
	Max int
	// BaseWait seeds the exponential backoff used when the server sends no
	// Retry-After (default 500ms). MaxWait caps every wait, including
	// server-suggested ones, so a pathological hint cannot stall the client
	// (default 15s).
	BaseWait time.Duration
	MaxWait  time.Duration
}

// wait computes the pre-retry sleep for the given zero-based attempt,
// preferring the server's hint within the cap.
func (p RetryPolicy) wait(attempt int, hint time.Duration) time.Duration {
	base, max := p.BaseWait, p.MaxWait
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	if max <= 0 {
		max = 15 * time.Second
	}
	w := base << attempt
	if hint > 0 {
		w = hint
	}
	if w > max || w <= 0 {
		w = max
	}
	return w
}

// transient reports whether err is a server rejection worth retrying: the
// shed statuses (429, 503) that signal pressure, not a broken request.
func transient(err error) (*APIError, bool) {
	var ae *APIError
	if !errors.As(err, &ae) {
		return nil, false
	}
	switch ae.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return ae, true
	}
	return nil, false
}

// New returns a client for the server at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// APIError is a non-2xx response, carrying the decoded server error body
// and the Retry-After hint of 429s.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do performs one JSON round trip, decoding into out when non-nil.
// hdr entries (may be nil) are set on the request verbatim.
func (c *Client) do(ctx context.Context, method, path string, body []byte, hdr map[string]string, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil {
		apiErr.Message = body.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil {
			apiErr.RetryAfter = time.Duration(sec) * time.Second
		}
	}
	return apiErr
}

// Submit posts a job and returns its accepted status (state "queued").
// Under a non-zero RetryPolicy, transient rejections (429/503) are retried
// with the server's Retry-After hint; the last rejection is returned when
// the budget runs out. Submission is safe to retry: a shed request was
// never accepted (the server journals acceptance before responding 202).
func (c *Client) Submit(ctx context.Context, req server.JobRequest) (server.JobStatus, error) {
	return c.SubmitWithRequestID(ctx, req, "")
}

// SubmitWithRequestID is Submit with an explicit X-Request-ID, so a
// caller (or a coordinator proxying on a client's behalf) can correlate
// the job across hops. An empty id lets the server mint one; the
// effective id comes back in the returned status.
func (c *Client) SubmitWithRequestID(ctx context.Context, req server.JobRequest, requestID string) (server.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	var hdr map[string]string
	if requestID != "" {
		hdr = map[string]string{"X-Request-ID": requestID}
	}
	var st server.JobStatus
	for attempt := 0; ; attempt++ {
		err = c.do(ctx, http.MethodPost, "/v1/jobs", body, hdr, &st)
		if err == nil || attempt >= c.Retry.Max {
			return st, err
		}
		ae, ok := transient(err)
		if !ok {
			return st, err
		}
		select {
		case <-ctx.Done():
			return st, err
		case <-time.After(c.Retry.wait(attempt, ae.RetryAfter)):
		}
	}
}

// Get fetches a job's current status.
func (c *Client) Get(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &st)
	return st, err
}

// List fetches all retained jobs in submission order.
func (c *Client) List(ctx context.Context) ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, nil, &out)
	return out, err
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, &st)
	return st, err
}

// Datasets fetches the server's dataset inventory.
func (c *Client) Datasets(ctx context.Context) ([]matrix.DatasetEntry, error) {
	var out []matrix.DatasetEntry
	err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, nil, &out)
	return out, err
}

// Version fetches the server's build identity.
func (c *Client) Version(ctx context.Context) (string, error) {
	var out struct {
		Version string `json:"version"`
	}
	err := c.do(ctx, http.MethodGet, "/version", nil, nil, &out)
	return out.Version, err
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Stream subscribes to a job's event stream and calls fn for every event,
// from the beginning of the job's history, until the stream closes (the
// job reached a terminal state), fn returns an error, or ctx is canceled.
func (c *Client) Stream(ctx context.Context, id string, fn func(server.Event) error) error {
	return c.StreamFrom(ctx, id, 0, fn)
}

// StreamFrom is Stream resuming at sequence number from: events with
// Seq < from are skipped server-side via the SSE Last-Event-ID header,
// so a reconnecting consumer replays only what it missed. from <= 0
// streams the full history.
func (c *Client) StreamFrom(ctx context.Context, id string, from int, fn func(server.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if from > 0 {
		// The server resumes after the given id, so ask for from-1.
		req.Header.Set("Last-Event-ID", strconv.Itoa(from-1))
	}
	// Clone the unary client minus its overall timeout: an event stream is
	// expected to stay open for the lifetime of the job.
	hc := *c.http()
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	body := io.Reader(resp.Body)
	var stall *stallWatch
	if c.StallTimeout > 0 {
		stall = newStallWatch(resp.Body, c.StallTimeout)
		defer stall.close()
		body = stall
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case line == "" && data.Len() > 0:
			var ev server.Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return fmt.Errorf("decoding event: %w", err)
			}
			data.Reset()
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	if stall != nil && stall.stalled() {
		return fmt.Errorf("%w (no bytes for %v)", ErrStreamStalled, c.StallTimeout)
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// stallWatch wraps an SSE response body with a dead-connection detector:
// a timer armed before every read closes the underlying body if the read
// does not deliver within the timeout, which unblocks the scanner with a
// read error the caller translates to ErrStreamStalled. Keepalive
// comments count as liveness — they are bytes like any other.
type stallWatch struct {
	rc      io.ReadCloser
	timeout time.Duration
	timer   *time.Timer
	tripped atomic.Bool
	once    sync.Once
}

func newStallWatch(rc io.ReadCloser, timeout time.Duration) *stallWatch {
	w := &stallWatch{rc: rc, timeout: timeout}
	w.timer = time.AfterFunc(timeout, func() {
		w.tripped.Store(true)
		w.rc.Close() //nolint:errcheck // unblocking a wedged read
	})
	return w
}

func (w *stallWatch) Read(p []byte) (int, error) {
	n, err := w.rc.Read(p)
	// Re-arm for the next read. If the watchdog already fired, rc is
	// closed and err reflects it; re-arming is harmless.
	w.timer.Reset(w.timeout)
	return n, err
}

func (w *stallWatch) stalled() bool { return w.tripped.Load() }

func (w *stallWatch) close() {
	w.once.Do(func() { w.timer.Stop() })
}

// Wait follows the job's event stream to completion and returns the
// terminal status. It degrades to polling when streaming fails (proxies
// that buffer SSE, for instance).
func (c *Client) Wait(ctx context.Context, id string) (server.JobStatus, error) {
	var final *server.JobStatus
	err := c.Stream(ctx, id, func(ev server.Event) error {
		if ev.Status != nil && ev.Status.Terminal() {
			final = ev.Status
		}
		return nil
	})
	if final != nil {
		return *final, nil
	}
	if err != nil && ctx.Err() != nil {
		return server.JobStatus{}, err
	}
	// Stream closed without a terminal event (or failed): poll.
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return server.JobStatus{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
