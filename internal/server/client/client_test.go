package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sparseadapt/internal/server"
)

// shedServer rejects the first n submissions with status and Retry-After,
// then accepts.
func shedServer(t *testing.T, n int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"shed"}`)) //nolint:errcheck
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-000001","state":"queued"}`)) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestSubmitRetriesTransient(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		ts, calls := shedServer(t, 2, status, "")
		c := New(ts.URL)
		c.Retry = RetryPolicy{Max: 3, BaseWait: time.Millisecond, MaxWait: 5 * time.Millisecond}
		st, err := c.Submit(context.Background(), server.JobRequest{})
		if err != nil {
			t.Fatalf("status %d: submit after retries: %v", status, err)
		}
		if st.ID != "job-000001" || calls.Load() != 3 {
			t.Errorf("status %d: got id=%q after %d calls, want job-000001 after 3", status, st.ID, calls.Load())
		}
	}
}

// TestSubmitHonorsRetryAfterCap: a server-suggested wait is used but capped
// by MaxWait, so a pathological hint cannot stall the client.
func TestSubmitHonorsRetryAfterCap(t *testing.T) {
	ts, calls := shedServer(t, 1, http.StatusTooManyRequests, "60")
	c := New(ts.URL)
	c.Retry = RetryPolicy{Max: 2, BaseWait: time.Millisecond, MaxWait: 20 * time.Millisecond}
	begin := time.Now()
	if _, err := c.Submit(context.Background(), server.JobRequest{}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Errorf("60s hint was not capped: took %s", elapsed)
	}
	if calls.Load() != 2 {
		t.Errorf("made %d calls, want 2", calls.Load())
	}
}

// TestSubmitZeroPolicySingleShot: the zero value keeps the historical
// fail-fast behavior.
func TestSubmitZeroPolicySingleShot(t *testing.T) {
	ts, calls := shedServer(t, 10, http.StatusTooManyRequests, "1")
	c := New(ts.URL)
	_, err := c.Submit(context.Background(), server.JobRequest{})
	if err == nil {
		t.Fatal("zero-policy submit to a shedding server succeeded")
	}
	if calls.Load() != 1 {
		t.Errorf("made %d calls, want 1 (no retry)", calls.Load())
	}
	ae, ok := transient(err)
	if !ok || ae.RetryAfter != time.Second {
		t.Errorf("error %v: transient=%v retryAfter=%v, want true/1s", err, ok, ae.RetryAfter)
	}
}

// TestSubmitNoRetryOnClientError: 4xx that is not pressure (bad request)
// must never be retried, whatever the policy says.
func TestSubmitNoRetryOnClientError(t *testing.T) {
	ts, calls := shedServer(t, 10, http.StatusBadRequest, "")
	c := New(ts.URL)
	c.Retry = RetryPolicy{Max: 5, BaseWait: time.Millisecond}
	if _, err := c.Submit(context.Background(), server.JobRequest{}); err == nil {
		t.Fatal("400 submit succeeded")
	}
	if calls.Load() != 1 {
		t.Errorf("made %d calls, want 1 (400 is not transient)", calls.Load())
	}
}

func TestRetryPolicyWait(t *testing.T) {
	p := RetryPolicy{BaseWait: 100 * time.Millisecond, MaxWait: time.Second}
	if got := p.wait(0, 0); got != 100*time.Millisecond {
		t.Errorf("wait(0) = %v", got)
	}
	if got := p.wait(2, 0); got != 400*time.Millisecond {
		t.Errorf("wait(2) = %v", got)
	}
	if got := p.wait(10, 0); got != time.Second {
		t.Errorf("wait(10) = %v, want the cap", got)
	}
	if got := p.wait(0, 300*time.Millisecond); got != 300*time.Millisecond {
		t.Errorf("wait with hint = %v, want the hint", got)
	}
	if got := p.wait(0, time.Hour); got != time.Second {
		t.Errorf("wait with huge hint = %v, want the cap", got)
	}
	if got := (RetryPolicy{}).wait(0, 0); got != 500*time.Millisecond {
		t.Errorf("zero-policy wait = %v, want the 500ms default", got)
	}
}

// TestSubmitWithRequestIDHeader: the explicit request id travels as
// X-Request-ID; plain Submit sends none.
func TestSubmitWithRequestIDHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Request-ID"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-000001","state":"queued","request_id":"rid-9"}`)) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	st, err := c.SubmitWithRequestID(context.Background(), server.JobRequest{}, "rid-9")
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != "rid-9" || st.RequestID != "rid-9" {
		t.Errorf("header=%q status.RequestID=%q, want rid-9 in both", got.Load(), st.RequestID)
	}
	if _, err := c.Submit(context.Background(), server.JobRequest{}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "" {
		t.Errorf("plain Submit sent X-Request-ID %q, want none", got.Load())
	}
}

// TestStreamFromSendsLastEventID: resuming at sequence n asks the server
// to replay from n by sending Last-Event-ID n-1.
func TestStreamFromSendsLastEventID(t *testing.T) {
	var header atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get("Last-Event-ID"))
		w.Header().Set("Content-Type", "text/event-stream")
		w.Write([]byte("event: state\nid: 5\ndata: {\"seq\":5,\"type\":\"state\",\"state\":\"done\"}\n\n")) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	var seqs []int
	err := New(ts.URL).StreamFrom(context.Background(), "job-000001", 5, func(ev server.Event) error {
		seqs = append(seqs, ev.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if header.Load() != "4" {
		t.Errorf("Last-Event-ID = %q, want 4", header.Load())
	}
	if len(seqs) != 1 || seqs[0] != 5 {
		t.Errorf("received seqs %v, want [5]", seqs)
	}
}

// TestStreamStallDetector: a wedged stream (no bytes at all) trips the
// watchdog with ErrStreamStalled, while a stream that is quiet except for
// keepalive comments stays alive until its real event arrives.
func TestStreamStallDetector(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		<-r.Context().Done() // no bytes, ever
	}))
	t.Cleanup(hang.Close)
	c := New(hang.URL)
	c.StallTimeout = 100 * time.Millisecond
	begin := time.Now()
	err := c.Stream(context.Background(), "job-000001", func(server.Event) error { return nil })
	if !errors.Is(err, ErrStreamStalled) {
		t.Fatalf("wedged stream returned %v, want ErrStreamStalled", err)
	}
	if time.Since(begin) > 5*time.Second {
		t.Errorf("watchdog took %s to fire", time.Since(begin))
	}

	// Keepalive comments are bytes: they must feed the watchdog.
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		fl.Flush()
		for i := 0; i < 6; i++ {
			time.Sleep(50 * time.Millisecond)
			w.Write([]byte(": keepalive\n\n")) //nolint:errcheck
			fl.Flush()
		}
		w.Write([]byte("event: state\nid: 0\ndata: {\"seq\":0,\"type\":\"state\",\"state\":\"done\"}\n\n")) //nolint:errcheck
		fl.Flush()
	}))
	t.Cleanup(alive.Close)
	c2 := New(alive.URL)
	c2.StallTimeout = 150 * time.Millisecond // > keepalive cadence, < total run
	events := 0
	if err := c2.Stream(context.Background(), "job-000001", func(server.Event) error {
		events++
		return nil
	}); err != nil {
		t.Fatalf("keepalive-fed stream failed: %v", err)
	}
	if events != 1 {
		t.Errorf("received %d events, want 1", events)
	}
}
