package server

import (
	"encoding/json"
	"testing"
	"time"
)

func TestValidateDefaults(t *testing.T) {
	var r JobRequest
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	want := JobRequest{Mode: ModeAdaptive, Kernel: "spmspv", Matrix: "R04", Scale: "test", OptMode: "ee", Config: "baseline"}
	if r != want {
		t.Errorf("defaults = %+v, want %+v", r, want)
	}
	b := JobRequest{Mode: ModeBatch}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Count != 4 {
		t.Errorf("batch count default = %d, want 4", b.Count)
	}
}

func TestValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		req  JobRequest
	}{
		{"mode", JobRequest{Mode: "warp"}},
		{"kernel", JobRequest{Kernel: "gemm"}},
		{"matrix", JobRequest{Matrix: "ZZZ"}},
		{"both-inputs", JobRequest{Matrix: "R04", MatrixMarket: "%%MatrixMarket matrix coordinate real general\n"}},
		{"not-mm", JobRequest{MatrixMarket: "1 1 1\n"}},
		{"scale", JobRequest{Scale: "huge"}},
		{"opt", JobRequest{OptMode: "fast"}},
		{"policy", JobRequest{Policy: "bold"}},
		{"tolerance", JobRequest{Tolerance: 11}},
		{"neg-tolerance", JobRequest{Tolerance: -1}},
		{"config", JobRequest{Config: "turbo"}},
		{"faults-mode", JobRequest{Faults: "nan=0.1"}},
		{"count-mode", JobRequest{Count: 2}},
		{"count-range", JobRequest{Mode: ModeBatch, Count: 9999}},
		{"neg-timeout", JobRequest{TimeoutSec: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.req.Validate(); err == nil {
				t.Errorf("Validate(%+v) accepted, want error", tc.req)
			}
		})
	}
}

func TestRateLimiterRefill(t *testing.T) {
	rl := newRateLimiter(1, 2) // 1 token/s, burst 2
	now := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := rl.allow("a", now); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, wait := rl.allow("a", now)
	if ok {
		t.Fatal("empty bucket must reject")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("wait = %v, want (0, 1s]", wait)
	}
	// A different client has its own bucket.
	if ok, _ := rl.allow("b", now); !ok {
		t.Error("other client must not be throttled")
	}
	// After the refill interval the original client gets a token back.
	if ok, _ := rl.allow("a", now.Add(1100*time.Millisecond)); !ok {
		t.Error("bucket did not refill")
	}
	// Disabled limiter always allows.
	if ok, _ := newRateLimiter(0, 1).allow("a", now); !ok {
		t.Error("rate 0 must disable limiting")
	}
}

// FuzzDecodeJobRequest fuzzes the public decoding surface: arbitrary bytes
// must never panic, and an accepted request must be stable under
// re-validation and JSON round-tripping.
func FuzzDecodeJobRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"mode":"adaptive","kernel":"spmspv","matrix":"R04","scale":"test"}`))
	f.Add([]byte(`{"mode":"batch","count":8}`))
	f.Add([]byte(`{"mode":"resilient","faults":"nan=0.1,stuck=0.05,seed=7"}`))
	f.Add([]byte(`{"matrix_market":"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n"}`))
	f.Add([]byte(`{"tolerance":0.4,"timeout_sec":1.5,"counters":true}`))
	f.Add([]byte(`{"mode":`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"mode":"adaptive"}{"x":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeJobRequest(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("accepted request fails re-validation: %v", err)
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not marshal: %v", err)
		}
		again, err := DecodeJobRequest(b)
		if err != nil {
			t.Fatalf("round-tripped request rejected: %v\n%s", err, b)
		}
		if again != req {
			t.Fatalf("round trip changed the request:\n got %+v\nwant %+v", again, req)
		}
	})
}
