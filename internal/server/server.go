// Package server is the simulation-as-a-service subsystem: an HTTP/JSON
// front end that turns the one-shot simulator + controller stack into a
// long-lived queryable backend. POST /v1/jobs submits a simulation
// (static, adaptive, resilient or batch; on a dataset entry or an uploaded
// MatrixMarket body), GET /v1/jobs/{id} polls status, and
// GET /v1/jobs/{id}/events streams per-epoch progress as Server-Sent
// Events while the run executes.
//
// Behind the API sits a bounded job queue with admission control (a full
// queue rejects with 429 + Retry-After instead of buffering unboundedly),
// per-client token-bucket rate limiting, a fixed worker pool whose
// executions run through the engine subsystem (content-addressed result
// cache, panic-to-error isolation, engine_* metrics), per-job deadlines
// and cancellation propagated via context, and graceful drain: Drain stops
// intake and completes queued and in-flight jobs before returning.
// Observability is native: the server_* metric family, the engine_* and
// controller_* families of the runs it hosts, Prometheus /metrics and
// net/http/pprof share one mux. See docs/SERVER.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sparseadapt/internal/engine"
	"sparseadapt/internal/fault"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/server/store"
)

// Config sizes the server. The zero value is usable: every field has a
// production-lean default applied by New.
type Config struct {
	// Workers bounds concurrent job executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue rejects submissions with 429 (default 64).
	QueueDepth int
	// RatePerSec is the per-client job submission rate (token bucket,
	// default 0 = unlimited); Burst is the bucket depth (default 8).
	RatePerSec float64
	Burst      int
	// MaxBodyBytes caps the request body, bounding MatrixMarket uploads
	// (default 8 MiB). Oversized bodies get 413.
	MaxBodyBytes int64
	// JobTimeout is the default and maximum per-job execution deadline
	// (default 5 minutes). Requests may ask for less, never more.
	JobTimeout time.Duration
	// MaxJobs bounds retained job records; the oldest terminal jobs are
	// evicted beyond it (default 1024).
	MaxJobs int
	// CacheEntries sizes the in-memory tier of the content-addressed result
	// cache (default 512); CacheDir adds a persistent on-disk tier.
	CacheEntries int
	CacheDir     string
	// StoreDir enables the durable job store: a checksummed write-ahead
	// journal of job lifecycle events under this directory. On boot the
	// journal is replayed — terminal jobs are resurfaced with their
	// persisted results, queued and in-flight jobs are re-queued and
	// re-executed. Empty disables durability (a crash loses non-terminal
	// jobs, the pre-journal behavior).
	StoreDir string
	// MaxAttempts bounds execution attempts per job (default 3). A job
	// whose every attempt fails is quarantined: terminal state
	// "quarantined", counted by server_jobs_quarantined_total.
	MaxAttempts int
	// RetryBaseDelay and RetryMaxDelay shape the exponential backoff with
	// deterministic jitter between attempts (defaults 50ms and 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerWindow, BreakerThreshold and BreakerCooldown configure the
	// failure-rate circuit breaker: when the failure fraction of the last
	// BreakerWindow execution attempts reaches BreakerThreshold (default
	// 0.5 over 20), the server sheds new submissions with 503 and fails
	// /readyz for BreakerCooldown (default 10s) while in-flight work
	// drains. A threshold above 1 disables the breaker.
	BreakerWindow    int
	BreakerThreshold float64
	BreakerCooldown  time.Duration
	// Chaos, when non-nil, injects deterministic service-layer faults
	// (exec panics, journal write errors, cache corruption, mid-epoch
	// kills) for resilience testing. Never set in production.
	Chaos *fault.Chaos
	// Metrics, when non-nil, receives the server_* family (and the engine_*
	// family of the execution engine). New creates a private registry when
	// nil, so /metrics always works.
	Metrics *obs.Registry
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 0.5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
}

// serverMetrics is the server_* instrument family (catalog in
// docs/OBSERVABILITY.md).
type serverMetrics struct {
	submitted, completed, failed, canceled    *obs.Counter
	quarantined, retries, recovered           *obs.Counter
	rejectedQueue, rejectedRate, badRequest   *obs.Counter
	rejectedBreaker, breakerTrips             *obs.Counter
	journalAppends, journalErrors             *obs.Counter
	httpRequests                              *obs.Counter
	queueDepth, inflight, sseClients, brkOpen *obs.Gauge
	jobDuration, queueWait, httpDuration      *obs.Histogram
}

var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		submitted:       r.Counter("server_jobs_submitted_total", "jobs accepted into the queue"),
		completed:       r.Counter("server_jobs_completed_total", "jobs finished successfully"),
		failed:          r.Counter("server_jobs_failed_total", "jobs finished with an error"),
		canceled:        r.Counter("server_jobs_canceled_total", "jobs canceled by the client or deadline"),
		quarantined:     r.Counter("server_jobs_quarantined_total", "jobs quarantined after exhausting their retry budget"),
		retries:         r.Counter("server_job_retries_total", "execution attempts retried after a transient failure"),
		recovered:       r.Counter("server_jobs_recovered_total", "non-terminal jobs re-queued from the journal at boot"),
		rejectedQueue:   r.Counter("server_admission_rejected_total", "submissions rejected because the queue was full"),
		rejectedRate:    r.Counter("server_ratelimit_rejected_total", "submissions rejected by the per-client rate limit"),
		rejectedBreaker: r.Counter("server_breaker_rejected_total", "submissions shed while the circuit breaker was open"),
		breakerTrips:    r.Counter("server_breaker_trips_total", "times the failure-rate circuit breaker opened"),
		journalAppends:  r.Counter("server_journal_appends_total", "records committed to the durable job journal"),
		journalErrors:   r.Counter("server_journal_errors_total", "journal writes that failed"),
		badRequest:      r.Counter("server_bad_requests_total", "submissions rejected as malformed (400/413)"),
		httpRequests:    r.Counter("server_http_requests_total", "HTTP requests served"),
		queueDepth:      r.Gauge("server_queue_depth", "jobs waiting in the admission queue"),
		inflight:        r.Gauge("server_jobs_inflight", "jobs currently executing"),
		sseClients:      r.Gauge("server_sse_clients", "connected event-stream subscribers"),
		brkOpen:         r.Gauge("server_breaker_open", "1 while the circuit breaker is shedding submissions"),
		jobDuration:     r.Histogram("server_job_duration_seconds", "job execution wall time", latencyBuckets),
		queueWait:       r.Histogram("server_job_queue_wait_seconds", "time jobs spend queued before execution", latencyBuckets),
		httpDuration:    r.Histogram("server_http_request_duration_seconds", "HTTP request latency", latencyBuckets),
	}
}

// Server is the simulation job server. Construct with New, mount Handler
// on an http.Server, call Start to launch the worker pool, and Drain on
// shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	eng   *engine.Engine
	met   serverMetrics
	rl    *rateLimiter
	brk   *breaker
	store *store.Store // nil when durability is disabled
	mux   *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // insertion order, for bounded retention
	nextID   int64
	draining bool
	queue    chan *job
	reserved int // queue slots held by submissions still journaling

	started   atomic.Bool
	wg        sync.WaitGroup
	models    modelCache
	birth     time.Time
	recovered int           // non-terminal jobs re-queued at boot
	avgJobSec atomic.Uint64 // EWMA of job wall time (float64 bits), for Retry-After
}

// New builds a Server from cfg (zero value = defaults). With StoreDir set
// it opens (or creates) the durable job store and recovers: terminal jobs
// reappear with their persisted results, queued and in-flight jobs are
// re-queued for execution when Start launches the worker pool.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cache, err := engine.NewCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		eng:   engine.New(engine.Options{Workers: cfg.Workers, Cache: cache, Metrics: reg}),
		met:   newServerMetrics(reg),
		rl:    newRateLimiter(cfg.RatePerSec, cfg.Burst),
		brk:   newBreaker(cfg.BreakerWindow, cfg.BreakerThreshold, cfg.BreakerCooldown),
		jobs:  map[string]*job{},
		birth: time.Now(),
	}
	var pending []*job
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		st.FaultHook = cfg.Chaos.JournalFault
		s.store = st
		if pending, err = s.recoverFromStore(); err != nil {
			st.Close() //nolint:errcheck // already failing
			return nil, err
		}
	}
	// Size the queue so every recovered job fits ahead of new admissions.
	s.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queue <- j
		s.met.queueDepth.Add(1)
		s.met.recovered.Inc()
	}
	s.recovered = len(pending)
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Recovered returns how many non-terminal jobs the boot recovery re-queued.
func (s *Server) Recovered() int { return s.recovered }

// Close compacts and closes the durable store. Call after Drain; the
// server must not execute jobs afterwards.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Metrics returns the server's registry (for embedding callers).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain gracefully shuts the job side down: it stops accepting new
// submissions (503), lets the workers finish every queued and in-flight
// job, and returns when the pool has exited. If ctx expires first, the
// remaining running jobs are canceled, the drain keeps waiting for the
// workers to observe the cancellation, and ctx.Err() is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if !s.started.Load() {
		return nil
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline: cancel whatever is still running so the workers can
		// exit, then wait for them (cancellation is cooperative and prompt).
		s.mu.Lock()
		for _, j := range s.jobs {
			j.requestCancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker executes jobs from the queue until it closes (drain).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.met.queueDepth.Add(-1)
		s.execute(j)
	}
}

// Handler returns the server's HTTP handler: the versioned API, health
// and readiness probes, Prometheus /metrics and /debug/pprof, all on one
// mux, wrapped with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.httpRequests.Inc()
		s.mux.ServeHTTP(w, r)
		s.met.httpDuration.Observe(time.Since(start).Seconds())
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// retryAfter sets the Retry-After header to d rounded up to whole seconds
// (minimum 1, the header's resolution).
func retryAfter(w http.ResponseWriter, d time.Duration) {
	sec := int(math.Ceil(d.Seconds()))
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
}

// queueRetryHint estimates how long until a queue slot frees: the current
// depth draining through the worker pool at the observed average job
// duration, clamped to [1s, 60s]. Before any job has finished it falls
// back to 1s.
func (s *Server) queueRetryHint() time.Duration {
	avg := math.Float64frombits(s.avgJobSec.Load())
	depth := float64(s.met.queueDepth.Load())
	workers := float64(s.cfg.Workers)
	est := time.Duration(avg * depth / workers * float64(time.Second))
	if est < time.Second {
		return time.Second
	}
	if est > time.Minute {
		return time.Minute
	}
	return est
}

// noteJobDuration folds one job wall time into the EWMA behind
// queueRetryHint.
func (s *Server) noteJobDuration(sec float64) {
	for {
		old := s.avgJobSec.Load()
		avg := math.Float64frombits(old)
		if avg == 0 {
			avg = sec
		} else {
			avg = 0.8*avg + 0.2*sec
		}
		if s.avgJobSec.CompareAndSwap(old, math.Float64bits(avg)) {
			return
		}
	}
}

// handleSubmit is POST /v1/jobs: rate limit → circuit breaker →
// parse/validate → admission control → durable accept → enqueue. The
// rejection layers are deliberately ordered cheapest-first, and every shed
// response carries a real Retry-After so well-behaved clients back off by
// the server's own estimate instead of guessing.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	if ok, wait := s.rl.allow(clientKey(r.RemoteAddr), now); !ok {
		s.met.rejectedRate.Inc()
		retryAfter(w, wait)
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded, retry in %s", wait.Round(time.Millisecond))
		return
	}
	if open, wait := s.brk.open(now); open {
		s.met.rejectedBreaker.Inc()
		retryAfter(w, wait)
		writeError(w, http.StatusServiceUnavailable, "circuit breaker open (execution failure rate too high), retry in %s", wait.Round(time.Millisecond))
		return
	}
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.met.badRequest.Inc()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := DecodeJobRequest(body)
	if err != nil {
		s.met.badRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Admission control counts enqueued jobs plus slots reserved by
	// submissions still committing their acceptance record, so the
	// post-journal enqueue below can never block or overflow the channel.
	if len(s.queue)+s.reserved >= cap(s.queue) {
		s.mu.Unlock()
		s.met.rejectedQueue.Inc()
		retryAfter(w, s.queueRetryHint())
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.QueueDepth)
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%06d", s.nextID), req, now)
	s.reserved++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	// Durability point: the job is accepted once (and only once) the
	// journal record is committed, and only then enqueued — a worker can
	// never dequeue (let alone run) a job whose acceptance failed. On
	// journal failure, withdraw the job and shed with 503 so the client
	// knows the submission did not take.
	if err := s.journalAccept(j); err != nil {
		j.requestCancel()
		s.mu.Lock()
		s.reserved--
		delete(s.jobs, j.id)
		for i, id := range s.order {
			if id == j.id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "journal write failed, job not accepted: %v", err)
		return
	}

	s.mu.Lock()
	s.reserved--
	if s.draining {
		// Drain closed the queue while the acceptance record was
		// committing. Cancel the job — journaling the terminal record so
		// the next boot does not resurrect it — and shed the submission.
		s.mu.Unlock()
		j.requestCancel()
		s.journalTerminal(j.status())
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.queue <- j // cannot block: the reservation held this slot
	s.met.queueDepth.Add(1)
	s.mu.Unlock()

	s.met.submitted.Inc()
	writeJSON(w, http.StatusAccepted, j.status())
}

// readBody consumes the request body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Live (queued/running) jobs are never evicted, so the map can exceed
// MaxJobs only by the number of live jobs, which the queue bounds. Evicted
// jobs are also forgotten by the durable store, keeping the snapshot
// bounded by the same retention policy.
func (s *Server) evictLocked() {
	for len(s.order) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if j, ok := s.jobs[id]; ok && j.status().Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				if s.store != nil {
					s.store.Forget(id)
				}
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.status())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, "job %s already finished", j.id)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream
// replaying the job's full event history and following it live until the
// job reaches a terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.met.sseClients.Add(1)
	defer s.met.sseClients.Add(-1)

	idx := 0
	// Honor Last-Event-ID resumption.
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n >= 0 {
			idx = n + 1
		}
	}
	for {
		evs, done, wake := j.events.since(idx)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data); err != nil {
				return // client disconnected
			}
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		idx += len(evs)
		if done && len(evs) == 0 {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, matrix.Dataset)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	breakerState := "closed"
	if open, _ := s.brk.open(time.Now()); open {
		breakerState = "open"
	}
	info := map[string]any{
		"status":         "ok",
		"uptime_sec":     time.Since(s.birth).Seconds(),
		"queue_depth":    int(s.met.queueDepth.Load()),
		"jobs_inflight":  int(s.met.inflight.Load()),
		"engine_workers": s.eng.Workers(),
		"breaker":        breakerState,
		"breaker_trips":  s.brk.tripCount(),
		"durable":        s.store != nil,
	}
	if s.store != nil {
		st := s.store.Stats()
		info["jobs_recovered"] = s.recovered
		info["journal_appends"] = st.Appends
		info["journal_replayed"] = st.Replayed
		info["journal_compactions"] = st.Compactions
		info["journal_truncated_tail"] = st.TruncatedTail
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.started.Load() {
		writeError(w, http.StatusServiceUnavailable, "worker pool not started")
		return
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if open, wait := s.brk.open(time.Now()); open {
		// An open breaker fails readiness so load balancers steer new work
		// away while in-flight jobs drain; liveness (healthz) stays ok.
		retryAfter(w, wait)
		writeError(w, http.StatusServiceUnavailable, "circuit breaker open for %s", wait.Round(time.Millisecond))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"version": obs.Version("sparseadaptd")})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape
}
