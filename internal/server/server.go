// Package server is the simulation-as-a-service subsystem: an HTTP/JSON
// front end that turns the one-shot simulator + controller stack into a
// long-lived queryable backend. POST /v1/jobs submits a simulation
// (static, adaptive, resilient or batch; on a dataset entry or an uploaded
// MatrixMarket body), GET /v1/jobs/{id} polls status, and
// GET /v1/jobs/{id}/events streams per-epoch progress as Server-Sent
// Events while the run executes.
//
// The queue/retry/quarantine core lives in the transport-agnostic
// internal/sched package; this package wraps it with the HTTP surface,
// per-client token-bucket rate limiting, request-size limits, the durable
// job journal (internal/server/store), X-Request-ID tracing and the local
// execution function, which runs jobs through the engine subsystem
// (content-addressed result cache, panic-to-error isolation, engine_*
// metrics). The same Server also underlies both roles of the cluster
// subsystem (internal/cluster): a coordinator swaps the execution function
// for remote placement, a worker adds peer cache fetching. Observability
// is native: the server_* metric family, the engine_* and controller_*
// families of the runs it hosts, Prometheus /metrics and net/http/pprof
// share one mux. See docs/SERVER.md.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"sparseadapt/internal/engine"
	"sparseadapt/internal/fault"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/sched"
	"sparseadapt/internal/server/store"
	"sparseadapt/internal/tenant"
)

// Config sizes the server. The zero value is usable: every field has a
// production-lean default applied by New.
type Config struct {
	// Workers bounds concurrent job executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue rejects submissions with 429 (default 64).
	QueueDepth int
	// RatePerSec is the per-client job submission rate (token bucket,
	// default 0 = unlimited); Burst is the bucket depth (default 8).
	RatePerSec float64
	Burst      int
	// MaxBodyBytes caps the request body, bounding MatrixMarket uploads
	// (default 8 MiB). Oversized bodies get 413.
	MaxBodyBytes int64
	// JobTimeout is the default and maximum per-job execution deadline
	// (default 5 minutes). Requests may ask for less, never more.
	JobTimeout time.Duration
	// MaxJobs bounds retained job records; the oldest terminal jobs are
	// evicted beyond it (default 1024).
	MaxJobs int
	// CacheEntries sizes the in-memory tier of the content-addressed result
	// cache (default 512); CacheDir adds a persistent on-disk tier.
	CacheEntries int
	CacheDir     string
	// StoreDir enables the durable job store: a checksummed write-ahead
	// journal of job lifecycle events under this directory. On boot the
	// journal is replayed — terminal jobs are resurfaced with their
	// persisted results, queued and in-flight jobs are re-queued and
	// re-executed. Empty disables durability (a crash loses non-terminal
	// jobs, the pre-journal behavior).
	StoreDir string
	// MaxAttempts bounds execution attempts per job (default 3). A job
	// whose every attempt fails is quarantined: terminal state
	// "quarantined", counted by server_jobs_quarantined_total.
	MaxAttempts int
	// RetryBaseDelay and RetryMaxDelay shape the exponential backoff with
	// deterministic jitter between attempts (defaults 50ms and 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerWindow, BreakerThreshold and BreakerCooldown configure the
	// failure-rate circuit breaker: when the failure fraction of the last
	// BreakerWindow execution attempts reaches BreakerThreshold (default
	// 0.5 over 20), the server sheds new submissions with 503 and fails
	// /readyz for BreakerCooldown (default 10s) while in-flight work
	// drains. A threshold above 1 disables the breaker.
	BreakerWindow    int
	BreakerThreshold float64
	BreakerCooldown  time.Duration
	// SSEKeepalive is the idle interval after which event streams emit a
	// ": keepalive" SSE comment so forwarded streams survive proxy and
	// load-balancer idle timeouts (default 15s; negative disables).
	SSEKeepalive time.Duration
	// Exec overrides the execution function. Nil (the standalone daemon and
	// cluster workers) runs jobs locally through the engine; the cluster
	// coordinator substitutes remote placement.
	Exec sched.ExecFunc
	// PeerFetch, when non-nil, is consulted on a local result-cache miss
	// before computing: it may return a framed cache entry (engine
	// EncodeEntry payload bytes) fetched from a peer node holding the same
	// fingerprint. Cluster workers wire this to the peer cache protocol.
	PeerFetch func(ctx context.Context, key engine.Key) ([]byte, bool)
	// JobLog, when non-nil, receives one line per job lifecycle edge
	// (accepted, retry, terminal), each carrying the job and request IDs.
	JobLog io.Writer
	// Chaos, when non-nil, injects deterministic service-layer faults
	// (exec panics, journal write errors, cache corruption, mid-epoch
	// kills) for resilience testing. Never set in production.
	Chaos *fault.Chaos
	// TenantQuota bounds each tenant's use of the admission queue: an
	// inflight-job cap and a submission token bucket, enforced before a
	// global queue slot is reserved so one tenant's rejections never consume
	// global admission capacity. The zero value disables enforcement; jobs
	// carrying a tenant are still tracked and reported on /v1/tenants.
	TenantQuota tenant.Quota
	// Metrics, when non-nil, receives the server_* family (and the engine_*
	// family of the execution engine). New creates a private registry when
	// nil, so /metrics always works.
	Metrics *obs.Registry
}

func (c *Config) defaults() {
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.SSEKeepalive == 0 {
		c.SSEKeepalive = 15 * time.Second
	}
}

// serverMetrics is the HTTP-side slice of the server_* instrument family;
// the job lifecycle metrics live with the scheduler (catalog in
// docs/OBSERVABILITY.md).
type serverMetrics struct {
	rejectedQueue, rejectedRate, badRequest *obs.Counter
	rejectedBreaker                         *obs.Counter
	journalAppends, journalErrors           *obs.Counter
	httpRequests                            *obs.Counter
	sseClients                              *obs.Gauge
	httpDuration                            *obs.Histogram
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		rejectedQueue:   r.Counter("server_admission_rejected_total", "submissions rejected because the queue was full"),
		rejectedRate:    r.Counter("server_ratelimit_rejected_total", "submissions rejected by the per-client rate limit"),
		rejectedBreaker: r.Counter("server_breaker_rejected_total", "submissions shed while the circuit breaker was open"),
		journalAppends:  r.Counter("server_journal_appends_total", "records committed to the durable job journal"),
		journalErrors:   r.Counter("server_journal_errors_total", "journal writes that failed"),
		badRequest:      r.Counter("server_bad_requests_total", "submissions rejected as malformed (400/413)"),
		httpRequests:    r.Counter("server_http_requests_total", "HTTP requests served"),
		sseClients:      r.Gauge("server_sse_clients", "connected event-stream subscribers"),
		httpDuration:    r.Histogram("server_http_request_duration_seconds", "HTTP request latency", sched.LatencyBuckets),
	}
}

// Server is the simulation job server. Construct with New, mount Handler
// on an http.Server, call Start to launch the worker pool, and Drain on
// shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	eng   *engine.Engine
	sch   *sched.Scheduler
	met   serverMetrics
	rl    *rateLimiter
	tt    *tenant.Tracker
	store *store.Store // nil when durability is disabled
	mux   *http.ServeMux

	logMu  sync.Mutex
	models modelCache
	birth  time.Time
}

// New builds a Server from cfg (zero value = defaults). With StoreDir set
// it opens (or creates) the durable job store and recovers: terminal jobs
// reappear with their persisted results, queued and in-flight jobs are
// re-queued for execution when Start launches the worker pool.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cache, err := engine.NewCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		met:   newServerMetrics(reg),
		rl:    newRateLimiter(cfg.RatePerSec, cfg.Burst),
		birth: time.Now(),
	}
	s.tt = tenant.NewTracker(cfg.TenantQuota, reg)
	exec := cfg.Exec
	if exec == nil {
		exec = s.localExec
	}
	s.sch = sched.New(sched.Config{
		Workers:          cfg.Workers,
		QueueDepth:       cfg.QueueDepth,
		JobTimeout:       cfg.JobTimeout,
		MaxJobs:          cfg.MaxJobs,
		MaxAttempts:      cfg.MaxAttempts,
		RetryBaseDelay:   cfg.RetryBaseDelay,
		RetryMaxDelay:    cfg.RetryMaxDelay,
		BreakerWindow:    cfg.BreakerWindow,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		Metrics:          reg,
	}, exec, sched.Hooks{
		AttemptStart: func(j *sched.Job, attempt int) {
			// Best-effort: a lost running-record only means recovery re-runs
			// an attempt that never reported back — exactly what it would do
			// anyway.
			s.journal(store.Record{Type: store.RecRunning, JobID: j.ID(), Attempt: attempt}) //nolint:errcheck
		},
		AttemptFailed: func(j *sched.Job, attempt int, err error) {
			s.logf("job=%s request_id=%s attempt=%d retrying: %v", j.ID(), j.RequestID(), attempt, err)
			s.journal(store.Record{Type: store.RecAttemptFailed, JobID: j.ID(), Attempt: attempt, Error: err.Error()}) //nolint:errcheck // best-effort
		},
		Finished: func(st JobStatus) {
			s.logf("job=%s request_id=%s state=%s attempts=%d", st.ID, st.RequestID, st.State, st.Attempts)
			s.journalTerminal(st)
			s.tt.Release(st.ID, st.FinishedAt.Sub(st.CreatedAt))
		},
		Evicted: func(id string) {
			if s.store != nil {
				s.store.Forget(id)
			}
		},
	})
	// The engine uses the scheduler's effective worker count so a defaulted
	// Config reports the same concurrency everywhere.
	s.eng = engine.New(engine.Options{Workers: s.sch.Config().Workers, Cache: cache, Metrics: reg})
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		st.FaultHook = cfg.Chaos.JournalFault
		s.store = st
		if err := s.recoverFromStore(); err != nil {
			st.Close() //nolint:errcheck // already failing
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Recovered returns how many non-terminal jobs the boot recovery re-queued.
func (s *Server) Recovered() int { return s.sch.Recovered() }

// Close compacts and closes the durable store. Call after Drain; the
// server must not execute jobs afterwards.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Metrics returns the server's registry (for embedding callers).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Cache returns the engine's content-addressed result cache (for the
// cluster peer-cache protocol).
func (s *Server) Cache() *engine.Cache { return s.eng.Cache() }

// Scheduler returns the underlying job scheduler (for embedding callers —
// the cluster coordinator re-queues jobs through it).
func (s *Server) Scheduler() *sched.Scheduler { return s.sch }

// HandleFunc registers an additional route on the server's mux, letting
// embedding subsystems (the cluster coordinator and worker) extend the API
// surface without a second listener.
func (s *Server) HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request)) {
	s.mux.HandleFunc(pattern, handler)
}

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() { s.sch.Start() }

// Drain gracefully shuts the job side down: it stops accepting new
// submissions (503), lets the workers finish every queued and in-flight
// job, and returns when the pool has exited. If ctx expires first, the
// remaining running jobs are canceled, the drain keeps waiting for the
// workers to observe the cancellation, and ctx.Err() is returned.
func (s *Server) Drain(ctx context.Context) error { return s.sch.Drain(ctx) }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.sch.Draining() }

// logf writes one job-lifecycle log line when Config.JobLog is set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.JobLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.cfg.JobLog, format+"\n", args...) //nolint:errcheck // logging is best-effort
}

// Handler returns the server's HTTP handler: the versioned API, health
// and readiness probes, Prometheus /metrics and /debug/pprof, all on one
// mux, wrapped with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.httpRequests.Inc()
		s.mux.ServeHTTP(w, r)
		s.met.httpDuration.Observe(time.Since(start).Seconds())
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// retryAfter sets the Retry-After header to d rounded up to whole seconds
// (minimum 1, the header's resolution).
func retryAfter(w http.ResponseWriter, d time.Duration) {
	sec := int(math.Ceil(d.Seconds()))
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
}

// requestID returns the submission's trace identifier: a client-supplied
// X-Request-ID (validated: 1–64 printable non-space-controlled ASCII
// characters) or a freshly generated 16-hex-digit one. Invalid supplied
// IDs are rejected rather than silently replaced, so the client's tracing
// never diverges from the server's.
func requestID(r *http.Request) (string, error) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return "", fmt.Errorf("generating request id: %w", err)
		}
		return hex.EncodeToString(buf[:]), nil
	}
	if len(id) > 64 {
		return "", fmt.Errorf("X-Request-ID longer than 64 characters")
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= 0x20 || id[i] >= 0x7f {
			return "", fmt.Errorf("X-Request-ID contains non-printable or non-ASCII characters")
		}
	}
	return id, nil
}

// handleSubmit is POST /v1/jobs: rate limit → circuit breaker →
// parse/validate → admission control → durable accept → enqueue. The
// rejection layers are deliberately ordered cheapest-first, and every shed
// response carries a real Retry-After so well-behaved clients back off by
// the server's own estimate instead of guessing.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	if ok, wait := s.rl.allow(clientKey(r.RemoteAddr), now); !ok {
		s.met.rejectedRate.Inc()
		retryAfter(w, wait)
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded, retry in %s", wait.Round(time.Millisecond))
		return
	}
	if open, wait := s.sch.BreakerOpen(now); open {
		s.met.rejectedBreaker.Inc()
		retryAfter(w, wait)
		writeError(w, http.StatusServiceUnavailable, "circuit breaker open (execution failure rate too high), retry in %s", wait.Round(time.Millisecond))
		return
	}
	rid, err := requestID(r)
	if err != nil {
		s.met.badRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.met.badRequest.Inc()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := DecodeJobRequest(body)
	if err != nil {
		s.met.badRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The tenant rides in the body's "tenant" field or the X-Tenant-ID
	// header; the field wins so coordinator→worker forwarding (which
	// re-serializes the body) preserves it. A header-sourced tenant goes
	// back through Validate for the same name rules and priority default.
	if req.Tenant == "" {
		if hdr := r.Header.Get("X-Tenant-ID"); hdr != "" {
			req.Tenant = hdr
			if err := req.Validate(); err != nil {
				s.met.badRequest.Inc()
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
	}
	class, err := tenant.ParseClass(req.Priority)
	if err != nil {
		s.met.badRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Tenant admission runs before the scheduler reserves a global slot: a
	// tenant at its quota is rejected with its own Retry-After (the EWMA of
	// its job residence times, not the global queue hint) and never consumes
	// global admission capacity.
	if hint, err := s.tt.Admit(req.Tenant, class, now); err != nil {
		retryAfter(w, hint)
		writeError(w, http.StatusTooManyRequests, "tenant %s: %v, retry in %s", req.Tenant, err, hint.Round(time.Millisecond))
		return
	}

	// Phase one: reserve an admission slot (the scheduler holds it while
	// the acceptance record commits, so the post-journal enqueue can never
	// overflow the queue).
	j, err := s.sch.Reserve(req, rid, now)
	switch {
	case errors.Is(err, sched.ErrDraining):
		s.tt.Cancel(req.Tenant)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errors.Is(err, sched.ErrQueueFull):
		s.tt.Cancel(req.Tenant)
		s.met.rejectedQueue.Inc()
		retryAfter(w, s.sch.QueueRetryHint())
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.sch.Config().QueueDepth)
		return
	case err != nil:
		s.tt.Cancel(req.Tenant)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	// Durability point: the job is accepted once (and only once) the
	// journal record is committed, and only then enqueued — a worker can
	// never dequeue (let alone run) a job whose acceptance failed. On
	// journal failure, withdraw the job and shed with 503 so the client
	// knows the submission did not take.
	if err := s.journalAccept(j); err != nil {
		s.sch.Withdraw(j)
		s.tt.Cancel(req.Tenant)
		retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "journal write failed, job not accepted: %v", err)
		return
	}

	if err := s.sch.Commit(j); err != nil {
		// Drain closed the queue while the acceptance record was
		// committing. The job was canceled — journal the terminal record so
		// the next boot does not resurrect it — and shed the submission.
		s.journalTerminal(j.Status())
		s.tt.Cancel(req.Tenant)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.tt.Bind(j.ID(), req.Tenant)
	s.logf("job=%s request_id=%s accepted mode=%s kernel=%s", j.ID(), rid, req.Mode, req.Kernel)
	w.Header().Set("X-Request-ID", rid)
	writeJSON(w, http.StatusAccepted, j.Status())
}

// readBody consumes the request body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.sch.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sch.List())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.sch.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !j.RequestCancel() {
		writeError(w, http.StatusConflict, "job %s already finished", j.ID())
		return
	}
	// A queued job cancels synchronously without the Finished hook firing,
	// so release its tenant slot here; Release is idempotent, so the
	// running-job path (where the hook does fire later) is unaffected.
	if st := j.Status(); st.Terminal() {
		s.tt.Release(st.ID, st.FinishedAt.Sub(st.CreatedAt))
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream
// replaying the job's full event history and following it live until the
// job reaches a terminal state or the client disconnects. Idle streams
// carry periodic ": keepalive" comments so intermediaries (cluster
// coordinators, proxies, load balancers) do not sever them.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.sch.Lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.met.sseClients.Add(1)
	defer s.met.sseClients.Add(-1)

	var keepalive <-chan time.Time
	if s.cfg.SSEKeepalive > 0 {
		t := time.NewTicker(s.cfg.SSEKeepalive)
		defer t.Stop()
		keepalive = t.C
	}

	idx := 0
	// Honor Last-Event-ID resumption.
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n >= 0 {
			idx = n + 1
		}
	}
	for {
		evs, done, wake := j.Events().Since(idx)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data); err != nil {
				return // client disconnected
			}
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		idx += len(evs)
		if done && len(evs) == 0 {
			return
		}
		select {
		case <-wake:
		case <-keepalive:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, matrix.Dataset)
}

// handleTenants is GET /v1/tenants: every tenant's admission state —
// inflight jobs, admitted/finished/rejected counts, and the residence-time
// EWMA behind its Retry-After hints — sorted by tenant ID.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tt.Snapshot())
}

// Tenants returns the tenant admission tracker (for embedding callers and
// tests).
func (s *Server) Tenants() *tenant.Tracker { return s.tt }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	breakerState := "closed"
	if open, _ := s.sch.BreakerOpen(time.Now()); open {
		breakerState = "open"
	}
	info := map[string]any{
		"status":         "ok",
		"uptime_sec":     time.Since(s.birth).Seconds(),
		"queue_depth":    s.sch.QueueLen(),
		"jobs_inflight":  s.sch.Inflight(),
		"engine_workers": s.eng.Workers(),
		"breaker":        breakerState,
		"breaker_trips":  s.sch.BreakerTrips(),
		"durable":        s.store != nil,
		"tenants_active": s.tt.Active(),
	}
	if s.store != nil {
		st := s.store.Stats()
		info["jobs_recovered"] = s.sch.Recovered()
		info["journal_appends"] = st.Appends
		info["journal_replayed"] = st.Replayed
		info["journal_compactions"] = st.Compactions
		info["journal_truncated_tail"] = st.TruncatedTail
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.sch.Started() {
		writeError(w, http.StatusServiceUnavailable, "worker pool not started")
		return
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if open, wait := s.sch.BreakerOpen(time.Now()); open {
		// An open breaker fails readiness so load balancers steer new work
		// away while in-flight jobs drain; liveness (healthz) stays ok.
		retryAfter(w, wait)
		writeError(w, http.StatusServiceUnavailable, "circuit breaker open for %s", wait.Round(time.Millisecond))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"version": obs.Version("sparseadaptd")})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape
}
