package server

import (
	"context"
	"sync"
	"time"

	"sparseadapt/internal/obs"
)

// job is the server-side record of one submitted simulation: the request,
// the lifecycle state machine, the cancellation handle of a running
// execution and the append-only event log SSE subscribers replay.
type job struct {
	id      string
	req     JobRequest
	created time.Time

	mu       sync.Mutex
	state    string
	started  time.Time
	finished time.Time
	errMsg   string
	result   *JobResult
	cacheHit bool
	cancel   context.CancelFunc // non-nil while running
	canceled bool               // cancel requested (possibly pre-start)

	events *eventLog
}

func newJob(id string, req JobRequest, now time.Time) *job {
	j := &job{id: id, req: req, created: now, state: StateQueued, events: newEventLog()}
	j.events.append(Event{Type: "state", State: StateQueued})
	return j
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() JobStatus {
	return JobStatus{
		ID: j.id, State: j.state, Request: j.req,
		CreatedAt: j.created, StartedAt: j.started, FinishedAt: j.finished,
		Error: j.errMsg, Result: j.result, CacheHit: j.cacheHit,
	}
}

// start transitions queued → running and installs the execution's cancel
// handle. It reports false when the job was canceled while queued, in
// which case the worker must skip it.
func (j *job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.events.append(Event{Type: "state", State: StateRunning})
	return true
}

// finish records the terminal state, emits the final event and closes the
// event stream. A canceled job that raced to completion stays canceled.
func (j *job) finish(res *JobResult, cacheHit bool, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = now
	j.cancel = nil
	if err == nil {
		j.state = StateDone
		j.result = res
		j.cacheHit = cacheHit
	} else {
		if j.canceled {
			j.state = StateCanceled
		} else {
			j.state = StateFailed
		}
		j.errMsg = err.Error()
	}
	st := j.statusLocked()
	typ := "result"
	if st.State != StateDone {
		typ = "error"
	}
	j.events.append(Event{Type: typ, Status: &st})
	j.events.close()
}

// requestCancel marks the job canceled and cancels a running execution.
// Returns false when the job is already terminal.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return false
	}
	j.canceled = true
	if j.cancel != nil {
		j.cancel()
		return true
	}
	// Still queued: finalize immediately, the worker will skip it.
	j.state = StateCanceled
	j.finished = time.Now()
	j.errMsg = "canceled before start"
	st := j.statusLocked()
	j.events.append(Event{Type: "error", Status: &st})
	j.events.close()
	return true
}

// epoch appends one per-epoch progress event.
func (j *job) epoch(rec obs.EpochRecord) {
	r := rec
	j.events.append(Event{Type: "epoch", Epoch: &r})
}

// eventLog is a job's append-only event history with broadcast: SSE
// subscribers replay from any index and then block on the wake channel,
// which is closed and replaced on every append, so late subscribers see
// the full stream and live subscribers wake immediately.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	done   bool
	wake   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append assigns the event's sequence number and wakes subscribers.
// Appending after close is dropped (the stream is sealed).
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	close(l.wake)
	l.wake = make(chan struct{})
}

// close seals the stream and wakes subscribers one last time. The wake
// channel is left closed (not replaced) so any subscriber that has drained
// the log wakes immediately, observes done, and exits instead of blocking
// on a channel that will never fire again.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.wake)
}

// since returns the events from index from onward, whether the stream is
// sealed, and the channel that will be closed on the next append/close.
func (l *eventLog) since(from int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var evs []Event
	if from < len(l.events) {
		evs = append(evs, l.events[from:]...)
	}
	return evs, l.done, l.wake
}

// epochEvents counts the epoch events recorded so far — the executor uses
// it to decide whether a cache-served result still needs its trace
// replayed into the stream.
func (l *eventLog) epochEvents() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Type == "epoch" {
			n++
		}
	}
	return n
}
