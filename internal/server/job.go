package server

import (
	"context"
	"sync"
	"time"

	"sparseadapt/internal/obs"
)

// job is the server-side record of one submitted simulation: the request,
// the lifecycle state machine (including the retry attempt counter), the
// cancellation handle of a running execution and the append-only event log
// SSE subscribers replay.
type job struct {
	id      string
	req     JobRequest
	created time.Time

	mu        sync.Mutex
	state     string
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *JobResult
	cacheHit  bool
	attempts  int
	recovered bool               // restored from the journal after a restart
	cancel    context.CancelFunc // non-nil while running
	canceled  bool               // cancel requested (possibly pre-start)
	cancelCh  chan struct{}      // closed on cancel; wakes backoff sleeps

	events *eventLog
}

func newJob(id string, req JobRequest, now time.Time) *job {
	j := &job{id: id, req: req, created: now, state: StateQueued,
		cancelCh: make(chan struct{}), events: newEventLog()}
	j.events.append(Event{Type: "state", State: StateQueued})
	return j
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() JobStatus {
	return JobStatus{
		ID: j.id, State: j.state, Request: j.req,
		CreatedAt: j.created, StartedAt: j.started, FinishedAt: j.finished,
		Error: j.errMsg, Result: j.result, CacheHit: j.cacheHit,
		Attempts: j.attempts, Recovered: j.recovered,
	}
}

// start begins the next execution attempt, transitioning queued → running
// on the first and installing the attempt's cancel handle. It returns the
// 1-based attempt number, or 0 when the job was canceled while queued (the
// worker must skip it). Attempts surviving a daemon restart keep counting
// from their journaled value — a poison job cannot reset its quarantine
// budget by crashing the server.
func (j *job) start(cancel context.CancelFunc, now time.Time) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled {
		return 0
	}
	j.attempts++
	if j.state != StateRunning {
		j.state = StateRunning
		j.started = now
		j.events.append(Event{Type: "state", State: StateRunning})
	}
	j.cancel = cancel
	return j.attempts
}

// retry records a failed attempt that will be re-executed.
func (j *job) retry(attempt int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	j.events.append(Event{Type: "retry", Attempt: attempt, Error: err.Error()})
}

// finish records the terminal state, emits the final event and closes the
// event stream. A canceled job that raced to completion stays canceled;
// quarantine marks a job whose retry budget is exhausted.
func (j *job) finish(res *JobResult, cacheHit bool, err error, quarantine bool, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = now
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.cacheHit = cacheHit
	case j.canceled:
		j.state = StateCanceled
		j.errMsg = err.Error()
	case quarantine:
		j.state = StateQuarantined
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	st := j.statusLocked()
	typ := "result"
	if st.State != StateDone {
		typ = "error"
	}
	j.events.append(Event{Type: typ, Status: &st})
	j.events.close()
}

// requestCancel marks the job canceled and cancels a running execution.
// Returns false when the job is already terminal. Idempotent: a repeated
// cancel (client retry, or Drain's cancel-all racing a client DELETE) is
// acknowledged without re-closing cancelCh.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled, StateQuarantined:
		return false
	}
	if j.canceled {
		return true
	}
	j.canceled = true
	close(j.cancelCh)
	if j.cancel != nil {
		j.cancel()
		return true
	}
	if j.state == StateRunning {
		// Between attempts (backoff sleep): the worker observes cancelCh and
		// finalizes; nothing to do here.
		return true
	}
	// Still queued: finalize immediately, the worker will skip it.
	j.state = StateCanceled
	j.finished = time.Now()
	j.errMsg = "canceled before start"
	st := j.statusLocked()
	j.events.append(Event{Type: "error", Status: &st})
	j.events.close()
	return true
}

// cancelRequested reports whether cancellation has been requested.
func (j *job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// sleep blocks for d or until the job is canceled, reporting whether the
// full backoff elapsed (false = canceled, abandon the retry).
func (j *job) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-j.cancelCh:
		return false
	}
}

// epoch appends one per-epoch progress event.
func (j *job) epoch(rec obs.EpochRecord) {
	r := rec
	j.events.append(Event{Type: "epoch", Epoch: &r})
}

// eventLog is a job's append-only event history with broadcast: SSE
// subscribers replay from any index and then block on the wake channel,
// which is closed and replaced on every append, so late subscribers see
// the full stream and live subscribers wake immediately.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	done   bool
	wake   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append assigns the event's sequence number and wakes subscribers.
// Appending after close is dropped (the stream is sealed).
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	close(l.wake)
	l.wake = make(chan struct{})
}

// close seals the stream and wakes subscribers one last time. The wake
// channel is left closed (not replaced) so any subscriber that has drained
// the log wakes immediately, observes done, and exits instead of blocking
// on a channel that will never fire again.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.wake)
}

// since returns the events from index from onward, whether the stream is
// sealed, and the channel that will be closed on the next append/close.
func (l *eventLog) since(from int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var evs []Event
	if from < len(l.events) {
		evs = append(evs, l.events[from:]...)
	}
	return evs, l.done, l.wake
}

// epochEvents counts the epoch events recorded so far — the executor uses
// it to decide whether a cache-served result still needs its trace
// replayed into the stream.
func (l *eventLog) epochEvents() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Type == "epoch" {
			n++
		}
	}
	return n
}
