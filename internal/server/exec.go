package server

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/experiments"
	"sparseadapt/internal/fault"
	"sparseadapt/internal/graph"
	"sparseadapt/internal/host"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sched"
	"sparseadapt/internal/sim"
)

// localExec is the standalone execution function the scheduler drives: one
// attempt of one job, run through the engine as a single content-addressed
// task, which buys panic-to-error isolation (a panicking run — including
// an injected chaos panic — fails its own attempt, not the worker), the
// shared result cache (identical requests, and re-executions after a
// crash, are served without re-simulating) and engine_* accounting for
// free. On a cluster worker a PeerFetch hook is consulted first, so a
// fingerprint already computed elsewhere in the fleet is replayed from its
// transferred cache entry instead of re-simulated.
func (s *Server) localExec(ctx context.Context, j *sched.Job, attempt int) (*JobResult, bool, error) {
	if s.cfg.Chaos.ExecPanic(j.ID(), attempt) {
		// Route the injected panic through the engine's panic-to-error
		// isolation under a per-(job, attempt) key, so the chaos failure
		// exercises the real recovery path but can never be masked by — or
		// leak into — the shared result cache.
		_, err := engine.Map(ctx, s.eng, []engine.Task[struct{}]{{
			Key: engine.NewHasher("chaos-panic/v1").Str(j.ID()).Int(attempt).Sum(),
			Compute: func(ctx context.Context) (struct{}, error) {
				panic(fmt.Sprintf("chaos: injected exec panic (job %s attempt %d)", j.ID(), attempt))
			},
		}})
		if err == nil {
			err = fmt.Errorf("chaos: injected exec panic (job %s attempt %d)", j.ID(), attempt)
		}
		return nil, false, err
	}
	key := j.Request().Fingerprint()
	s.peerFill(ctx, key)
	computed := false
	res, err := engine.Map(ctx, s.eng, []engine.Task[JobResult]{{
		Key: key,
		Compute: func(ctx context.Context) (JobResult, error) {
			computed = true
			return s.runJob(ctx, j, attempt)
		},
	}})
	if err != nil {
		return nil, false, err
	}
	r := res[0]
	hit := !computed
	if hit && j.Events().EpochEvents() == 0 {
		// Cache-served result: the live run streamed its epochs as they
		// happened; replay the retained trace so subscribers of this job see
		// the same stream.
		for _, rec := range r.Trace {
			j.Emit(rec)
		}
	}
	if computed && s.cfg.Chaos.CorruptCache(j.ID()) {
		s.corruptCacheEntry(key)
	}
	return &r, hit, nil
}

// peerFill consults the PeerFetch hook on a local cache miss and installs
// a fetched entry, so the engine.Map probe that follows hits without
// re-simulating. Best-effort: a failed or absent peer fetch just computes
// locally.
func (s *Server) peerFill(ctx context.Context, key engine.Key) {
	if s.cfg.PeerFetch == nil {
		return
	}
	cache := s.eng.Cache()
	if cache == nil {
		return
	}
	if _, ok := cache.Get(key); ok {
		return
	}
	if payload, ok := s.cfg.PeerFetch(ctx, key); ok {
		cache.Put(key, payload)
	}
}

// corruptCacheEntry is the chaos cache-corruption fault: flip bytes in the
// job's on-disk cache entry and evict the memory-tier copy, so the next
// identical request must take the checksum-verified disk read — which
// detects the damage, discards the entry and recomputes. The injected
// fault therefore costs work, never correctness; the soak test relies on
// that.
func (s *Server) corruptCacheEntry(key engine.Key) {
	cache := s.eng.Cache()
	if cache == nil {
		return
	}
	path := cache.DiskPath(key)
	if path == "" {
		return
	}
	fault.CorruptFile(path, 0xA5, 4) //nolint:errcheck // the entry may not exist; chaos is best-effort
	cache.DropMemory(key)
}

// chaosEpochEmitter wraps the job's epoch emitter with the mid-epoch kill
// fault: when chaos schedules a kill for this attempt, the Nth epoch event
// panics from inside the compute function — the closest a simulation gets
// to dying mid-run — which the engine's isolation converts into an attempt
// failure for the retry loop to absorb.
func (s *Server) chaosEpochEmitter(j *sched.Job, attempt int) func(obs.EpochRecord) {
	kill, ok := s.cfg.Chaos.KillAtEpoch(j.ID(), attempt)
	if !ok {
		return j.Emit
	}
	n := 0
	return func(rec obs.EpochRecord) {
		n++
		if n == kill {
			panic(fmt.Sprintf("chaos: injected mid-epoch kill at epoch %d (job %s attempt %d)", kill, j.ID(), attempt))
		}
		j.Emit(rec)
	}
}

// runJob performs the simulation a validated request describes. It is pure
// with respect to the request fingerprint: identical requests produce
// identical JobResults (the engine cache depends on this).
func (s *Server) runJob(ctx context.Context, j *sched.Job, attempt int) (JobResult, error) {
	req := j.Request()
	emit := s.chaosEpochEmitter(j, attempt)
	sc, err := scaleFor(req.Scale)
	if err != nil {
		return JobResult{}, err
	}
	if req.Seed != 0 {
		sc.Seed = req.Seed
	}
	// Nested engine use is safe: each Map call gets its own worker set, so
	// a job's internal fan-out (model training sweeps, batch offloads) is
	// bounded per batch and cached in the same store. The shared replay memo
	// lets jobs over the same workload reuse each other's epoch replays even
	// when their request fingerprints (and thus engine cache keys) differ.
	sc.Eng = s.eng
	sc.Memo = sim.SharedRunMemo()

	off, modelKernel, err := buildWorkload(req, sc)
	if err != nil {
		return JobResult{}, err
	}
	startCfg, err := configFor(req.Config)
	if err != nil {
		return JobResult{}, err
	}

	// Per-job observer: controller_* metrics land in the shared registry
	// (instruments are atomic), the per-epoch trace is private to the job
	// and streamed live to SSE subscribers via the epoch hook. Observers are
	// single-run — never shared between concurrent jobs.
	tr := obs.NewTraceRecorder()
	tr.SetEpochHook(emit)
	observer := core.NewObserver(s.reg, tr)
	observer.TraceCounters = req.Counters

	runner := host.NewRunner(sc.Chip, sc.BW, sc.Epoch)
	runner.Obs = observer

	if req.Mode == ModeStatic {
		hres, run, err := runner.RunStaticFull(ctx, startCfg, off)
		if err != nil {
			return JobResult{}, err
		}
		// Static runs bypass the controller and its observer; synthesize the
		// epoch stream from the device-side log.
		recs := epochRecords(run, req.Counters)
		for _, rec := range recs {
			emit(rec)
		}
		return JobResult{Host: hres, Epochs: len(run.Epochs), Reconfigs: run.Reconfig, Trace: recs}, nil
	}

	mode, err := modeFor(req.OptMode)
	if err != nil {
		return JobResult{}, err
	}
	model, err := s.models.get(sc, req.Scale, modelKernel, mode)
	if err != nil {
		return JobResult{}, fmt.Errorf("training model: %w", err)
	}
	opts := controlOptions(req, modelKernel, sc)

	switch req.Mode {
	case ModeAdaptive:
		hres, run, err := runner.RunAdaptiveFull(ctx, model, opts, startCfg, off)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Host: hres, Epochs: len(run.Epochs), Reconfigs: run.Reconfig, Trace: tr.Epochs()}, nil

	case ModeResilient:
		spec, err := fault.ParseSpec(req.Faults)
		if err != nil {
			return JobResult{}, err
		}
		ropts := core.DefaultResilientOptions()
		ropts.Options = opts
		var inject core.FaultInjector
		if !spec.IsZero() {
			inject = fault.New(spec)
		}
		// The resilient controller manages its own recovery machinery and
		// runs to completion; cancellation takes effect between jobs, not
		// mid-run (documented limitation, see docs/SERVER.md).
		hres, run, err := runner.RunResilient(model, ropts, startCfg, off, inject)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{
			Host: hres, Epochs: len(run.Epochs), Reconfigs: run.Reconfig,
			Resilience: run.Resilience.String(), Trace: tr.Epochs(),
		}, nil

	case ModeBatch:
		// Batch jobs fan N copies of the offload through the engine; each
		// offload runs its own controller over the shared read-only model
		// (see the Ensemble concurrency contract). The per-run observer
		// can't follow N concurrent runs, so batch jobs stream no epochs.
		runner.Obs = nil
		offs := make([]host.Offload, req.Count)
		for i := range offs {
			offs[i] = off
		}
		results, err := runner.RunBatchAdaptive(ctx, s.eng, model, opts, startCfg, offs)
		if err != nil {
			return JobResult{}, err
		}
		res := JobResult{Batch: results, Epochs: 0}
		if len(results) > 0 {
			res.Host = results[0]
		}
		return res, nil
	}
	return JobResult{}, fmt.Errorf("unhandled mode %q", req.Mode)
}

// buildWorkload generates or parses the input matrix and schedules the
// requested kernel on it, mirroring the CLI `run` path exactly so a job
// submitted over HTTP computes the same workload as the equivalent local
// run. It returns the offload, plus the kernel name used for model lookup
// (graph kernels reuse the SpMSpV model, Section 5.2).
func buildWorkload(req JobRequest, sc experiments.Scale) (host.Offload, string, error) {
	var am *matrix.COO
	var err error
	if req.MatrixMarket != "" {
		am, err = matrix.ReadMatrixMarket(strings.NewReader(req.MatrixMarket))
		if err != nil {
			return host.Offload{}, "", fmt.Errorf("parsing matrix_market: %w", err)
		}
	} else {
		entry, eerr := matrix.Entry(req.Matrix)
		if eerr != nil {
			return host.Offload{}, "", eerr
		}
		am = entry.Generate(sc.Matrix, sc.Seed)
	}
	a := am.ToCSC()
	dim := a.Cols
	modelKernel := req.Kernel
	var wl kernels.Workload
	bytesIn := host.InputBytes(a.NNZ(), dim)
	bytesOut := 0
	switch req.Kernel {
	case "spmspm":
		var out *matrix.CSR
		out, wl, err = kernels.SpMSpM(a, am.ToCSR().Transpose(), sc.Chip.NGPE(), sc.Chip.Tiles)
		bytesIn *= 2 // both operands stream in
		if out != nil {
			bytesOut = host.InputBytes(out.NNZ(), dim)
		}
	case "spmspv":
		x := matrix.RandomVec(rand.New(rand.NewSource(sc.Seed+1)), dim, 0.5)
		var y *matrix.SparseVec
		y, wl, err = kernels.SpMSpV(a, x, sc.Chip.NGPE(), sc.Chip.Tiles)
		bytesIn += host.InputBytes(x.NNZ(), dim)
		if y != nil {
			bytesOut = y.NNZ() * 12
		}
	case "bfs":
		_, wl, err = graph.BFS(a, 0, sc.Chip.NGPE(), sc.Chip.Tiles)
		bytesOut = dim * 8
		modelKernel = "spmspv"
	case "sssp":
		_, wl, err = graph.SSSP(a, 0, sc.Chip.NGPE(), sc.Chip.Tiles)
		bytesOut = dim * 8
		modelKernel = "spmspv"
	default:
		return host.Offload{}, "", fmt.Errorf("unknown kernel %q", req.Kernel)
	}
	if err != nil {
		return host.Offload{}, "", err
	}
	return host.Offload{Workload: wl, BytesIn: bytesIn, BytesOut: bytesOut}, modelKernel, nil
}

// controlOptions mirrors the CLI's policy selection: hybrid with the
// paper's 40% tolerance for SpMSpV-class workloads, conservative for
// SpMSpM (Section 5.4), with explicit request overrides on top.
func controlOptions(req JobRequest, modelKernel string, sc experiments.Scale) core.Options {
	opts := core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: sc.Epoch}
	if req.Tolerance != 0 {
		opts.Tolerance = req.Tolerance
	}
	if modelKernel == "spmspm" {
		opts = core.Options{Policy: core.Conservative, EpochScale: sc.Epoch}
	}
	switch req.Policy {
	case "conservative":
		opts.Policy = core.Conservative
	case "aggressive":
		opts.Policy = core.Aggressive
	case "hybrid":
		opts.Policy = core.Hybrid
	}
	return opts
}

func scaleFor(name string) (experiments.Scale, error) {
	switch name {
	case "test":
		return experiments.TestScale(), nil
	case "small":
		return experiments.SmallScale(), nil
	case "paper":
		return experiments.PaperScale(), nil
	}
	return experiments.Scale{}, fmt.Errorf("unknown scale %q", name)
}

func modeFor(name string) (power.Mode, error) {
	switch name {
	case "ee":
		return power.EnergyEfficient, nil
	case "pp":
		return power.PowerPerformance, nil
	}
	return 0, fmt.Errorf("unknown opt_mode %q", name)
}

func configFor(name string) (config.Config, error) {
	switch name {
	case "baseline":
		return config.Baseline, nil
	case "best-avg":
		return config.BestAvgCache, nil
	case "max":
		return config.MaxCfg, nil
	}
	return config.Config{}, fmt.Errorf("unknown config %q", name)
}

// epochRecords converts a device-side run log to the trace-record form the
// SSE stream carries, reproducing the observer's mapping (static runs
// bypass the controller, so no observer saw them).
func epochRecords(run core.RunResult, counters bool) []obs.EpochRecord {
	recs := make([]obs.EpochRecord, 0, len(run.Epochs))
	t := 0.0
	for i, ep := range run.Epochs {
		rec := obs.EpochRecord{
			Epoch: i, Phase: ep.Phase, StartSec: t,
			DurSec: ep.Metrics.TimeSec, EnergyJ: ep.Metrics.EnergyJ, FPOps: ep.Metrics.FPOps,
			Config: ep.Config.String(), Reconfigured: ep.Reconfigured,
		}
		if counters {
			names := sim.FeatureNames()
			vals := ep.Counters.Features()
			rec.Counters = make(map[string]float64, len(names))
			for k, n := range names {
				rec.Counters[n] = vals[k]
			}
		}
		t += ep.Metrics.TimeSec
		recs = append(recs, rec)
	}
	return recs
}

// modelCache memoizes trained ensembles by (scale, seed, kernel, mode).
// Training is expensive (a full oracle + sweep pass), so concurrent jobs
// wanting the same model wait for one training run instead of duplicating
// it; the coarse lock is exactly that singleflight.
type modelCache struct {
	mu sync.Mutex
	m  map[modelKey]*core.Ensemble
}

type modelKey struct {
	scale  string
	seed   int64
	kernel string
	mode   power.Mode
}

func (c *modelCache) get(sc experiments.Scale, scaleName, kernel string, mode power.Mode) (*core.Ensemble, error) {
	key := modelKey{scale: scaleName, seed: sc.Seed, kernel: kernel, mode: mode}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[modelKey]*core.Ensemble{}
	}
	if ens, ok := c.m[key]; ok {
		return ens, nil
	}
	ens, err := experiments.Model(sc, kernel, config.CacheMode, mode)
	if err != nil {
		return nil, err
	}
	c.m[key] = ens
	return ens, nil
}
