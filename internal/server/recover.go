package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sparseadapt/internal/server/store"
)

// journal appends one lifecycle record to the durable store (a no-op
// without one), keeping the journal metrics honest.
func (s *Server) journal(rec store.Record) error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Append(rec); err != nil {
		s.met.journalErrors.Inc()
		return err
	}
	s.met.journalAppends.Inc()
	return nil
}

// journalAccept commits a job's acceptance record — the submission's
// durability point. Unlike every later record it is NOT best-effort: the
// caller must not 202 a job whose acceptance did not reach disk.
func (s *Server) journalAccept(j *job) error {
	if s.store == nil {
		return nil
	}
	reqJSON, err := json.Marshal(j.req)
	if err != nil {
		return fmt.Errorf("encoding request: %w", err)
	}
	return s.journal(store.Record{Type: store.RecAccepted, JobID: j.id, Request: reqJSON})
}

// journalTerminal records a job's terminal state. Best-effort by design: a
// failed write leaves the job non-terminal in the journal, and the worst a
// crash can then do is re-execute it — deterministic and mostly
// cache-served, never lost or wrong.
func (s *Server) journalTerminal(st JobStatus) {
	if s.store == nil {
		return
	}
	rec := store.Record{JobID: st.ID, Attempt: st.Attempts, Error: st.Error}
	switch st.State {
	case StateDone:
		rec.Type = store.RecDone
		rec.CacheHit = st.CacheHit
		if st.Result != nil {
			if data, err := json.Marshal(st.Result); err == nil {
				rec.Result = data
			}
		}
	case StateFailed:
		rec.Type = store.RecFailed
	case StateCanceled:
		rec.Type = store.RecCanceled
	case StateQuarantined:
		rec.Type = store.RecQuarantined
	default:
		return
	}
	s.journal(rec) //nolint:errcheck // best-effort, error already counted
}

// recoverFromStore rebuilds the job map from the journal fold at boot.
// Terminal jobs are resurfaced as finished records (persisted result,
// sealed event stream); queued and in-flight jobs are returned for
// re-queueing — re-executing an interrupted job is safe because execution
// is deterministic per request and the content-addressed cache serves
// completed work without re-simulating. Attempt counts survive the
// restart, so a poison job cannot reset its quarantine budget by crashing
// the daemon.
func (s *Server) recoverFromStore() ([]*job, error) {
	var pending []*job
	for _, js := range s.store.Jobs() {
		if n, ok := parseJobID(js.ID); ok && n > s.nextID {
			s.nextID = n
		}
		var req JobRequest
		if len(js.Request) > 0 {
			if err := json.Unmarshal(js.Request, &req); err != nil {
				return nil, fmt.Errorf("server: recovering %s: bad request payload: %w", js.ID, err)
			}
		}
		j := newJob(js.ID, req, js.Accepted)
		j.attempts = js.Attempts
		j.recovered = true
		if js.Terminal() {
			s.resurface(j, js)
		} else {
			pending = append(pending, j)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	return pending, nil
}

// resurface restores a terminal job's outcome and seals its event stream,
// so status polls and SSE replays after a restart behave exactly like they
// would have before it (minus the per-epoch trace, which is not journaled;
// see docs/SERVER.md).
func (s *Server) resurface(j *job, js store.JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = js.State
	j.finished = js.Finished
	j.errMsg = js.LastError
	j.cacheHit = js.CacheHit
	if len(js.Result) > 0 {
		var res JobResult
		if err := json.Unmarshal(js.Result, &res); err == nil {
			j.result = &res
		}
	}
	st := j.statusLocked()
	typ := "result"
	if st.State != StateDone {
		typ = "error"
	}
	j.events.append(Event{Type: typ, Status: &st})
	j.events.close()
}

// parseJobID extracts the numeric suffix of a "job-%06d" ID so recovery
// can resume the ID sequence past every journaled job.
func parseJobID(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// backoffDelay computes the pre-retry sleep for a failed attempt:
// exponential from base, capped at max, with deterministic jitter in
// [0.5, 1.5) hashed from (jobID, attempt) — spread-out retries without a
// shared RNG, and reproducible under chaos.
func backoffDelay(base, max time.Duration, jobID string, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 || d > max { // <= 0 catches shift overflow
		d = max
	}
	h := splitmixJitter(jobID, attempt)
	jitter := 0.5 + float64(h>>11)/float64(1<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// splitmixJitter is a splitmix64 finalizer over fnv1a(jobID) ^ attempt.
func splitmixJitter(jobID string, attempt int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(jobID); i++ {
		h ^= uint64(jobID[i])
		h *= 1099511628211
	}
	z := h ^ uint64(attempt)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
