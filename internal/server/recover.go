package server

import (
	"encoding/json"
	"fmt"

	"sparseadapt/internal/sched"
	"sparseadapt/internal/server/store"
)

// journal appends one lifecycle record to the durable store (a no-op
// without one), keeping the journal metrics honest.
func (s *Server) journal(rec store.Record) error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Append(rec); err != nil {
		s.met.journalErrors.Inc()
		return err
	}
	s.met.journalAppends.Inc()
	return nil
}

// journalAccept commits a job's acceptance record — the submission's
// durability point. Unlike every later record it is NOT best-effort: the
// caller must not 202 a job whose acceptance did not reach disk.
func (s *Server) journalAccept(j *sched.Job) error {
	if s.store == nil {
		return nil
	}
	reqJSON, err := json.Marshal(j.Request())
	if err != nil {
		return fmt.Errorf("encoding request: %w", err)
	}
	return s.journal(store.Record{Type: store.RecAccepted, JobID: j.ID(), Request: reqJSON, RequestID: j.RequestID()})
}

// journalTerminal records a job's terminal state. Best-effort by design: a
// failed write leaves the job non-terminal in the journal, and the worst a
// crash can then do is re-execute it — deterministic and mostly
// cache-served, never lost or wrong.
func (s *Server) journalTerminal(st JobStatus) {
	if s.store == nil {
		return
	}
	rec := store.Record{JobID: st.ID, Attempt: st.Attempts, Error: st.Error}
	switch st.State {
	case StateDone:
		rec.Type = store.RecDone
		rec.CacheHit = st.CacheHit
		if st.Result != nil {
			if data, err := json.Marshal(st.Result); err == nil {
				rec.Result = data
			}
		}
	case StateFailed:
		rec.Type = store.RecFailed
	case StateCanceled:
		rec.Type = store.RecCanceled
	case StateQuarantined:
		rec.Type = store.RecQuarantined
	default:
		return
	}
	s.journal(rec) //nolint:errcheck // best-effort, error already counted
}

// recoverFromStore rebuilds the scheduler's job map from the journal fold
// at boot. Terminal jobs are resurfaced as finished records (persisted
// result, sealed event stream); queued and in-flight jobs are re-queued —
// re-executing an interrupted job is safe because execution is
// deterministic per request and the content-addressed cache serves
// completed work without re-simulating. Attempt counts survive the
// restart, so a poison job cannot reset its quarantine budget by crashing
// the daemon.
func (s *Server) recoverFromStore() error {
	for _, js := range s.store.Jobs() {
		var req JobRequest
		if len(js.Request) > 0 {
			if err := json.Unmarshal(js.Request, &req); err != nil {
				return fmt.Errorf("server: recovering %s: bad request payload: %w", js.ID, err)
			}
		}
		j := s.sch.Restore(js.ID, req, js.RequestID, js.Accepted)
		j.SetRecovered(js.Attempts)
		if js.Terminal() {
			var result *JobResult
			if len(js.Result) > 0 {
				var res JobResult
				if err := json.Unmarshal(js.Result, &res); err == nil {
					result = &res
				}
			}
			s.sch.RestoreTerminal(j, js.State, js.Finished, js.LastError, js.CacheHit, result)
		} else {
			s.sch.Requeue(j)
		}
	}
	return nil
}
