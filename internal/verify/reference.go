package verify

import (
	"fmt"
	"math"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/oracle"
	"sparseadapt/internal/power"
)

// Differential checking: the traced kernels are intricate (outer products,
// partial-product merges, per-GPE scheduling), so each one is validated
// against the most naive implementation that could possibly be right — a
// dense triple loop — on random inputs. Tolerances are relative: the
// traced kernels accumulate in data-dependent order, so results agree to
// rounding, not bit-exactly.

// refTol is the relative floating-point tolerance for reference
// comparisons. Corpus values are O(1) and reductions are short, so 1e-9
// is generous for reordering error yet catches any genuine defect.
const refTol = 1e-9

// RefSpMSpM computes C = A·B with a dense triple loop.
func RefSpMSpM(a *matrix.CSC, b *matrix.CSR) [][]float64 {
	ad := a.ToCSR().Dense()
	bd := b.Dense()
	out := make([][]float64, a.Rows)
	for i := range out {
		out[i] = make([]float64, b.Cols)
		for k := 0; k < a.Cols; k++ {
			if ad[i][k] == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out[i][j] += ad[i][k] * bd[k][j]
			}
		}
	}
	return out
}

// RefSpMSpV computes y = A·x densely.
func RefSpMSpV(a *matrix.CSC, x *matrix.SparseVec) []float64 {
	ad := a.ToCSR().Dense()
	xd := x.Dense()
	out := make([]float64, a.Rows)
	for i := range out {
		for j := 0; j < a.Cols; j++ {
			out[i] += ad[i][j] * xd[j]
		}
	}
	return out
}

// closeRel reports |a-b| ≤ refTol·max(1, |a|, |b|).
func closeRel(a, b float64) bool {
	scale := 1.0
	if v := math.Abs(a); v > scale {
		scale = v
	}
	if v := math.Abs(b); v > scale {
		scale = v
	}
	return math.Abs(a-b) <= refTol*scale
}

// CheckSpMSpM runs the traced kernel on (a, b) and compares against the
// dense reference, returning a readable error naming the first divergent
// cell.
func CheckSpMSpM(a *matrix.CSC, b *matrix.CSR, nGPE, nLCP int) error {
	c, _, err := kernels.SpMSpM(a, b, nGPE, nLCP)
	if err != nil {
		return err
	}
	ref := RefSpMSpM(a, b)
	got := c.Dense()
	for i := range ref {
		for j := range ref[i] {
			if !closeRel(ref[i][j], got[i][j]) {
				return fmt.Errorf("SpMSpM C[%d][%d]: reference %v, kernel %v", i, j, ref[i][j], got[i][j])
			}
		}
	}
	return nil
}

// CheckSpMSpV runs the traced kernel on (a, x) and compares against the
// dense reference.
func CheckSpMSpV(a *matrix.CSC, x *matrix.SparseVec, nGPE, nLCP int) error {
	y, _, err := kernels.SpMSpV(a, x, nGPE, nLCP)
	if err != nil {
		return err
	}
	ref := RefSpMSpV(a, x)
	got := y.Dense()
	for i := range ref {
		if !closeRel(ref[i], got[i]) {
			return fmt.Errorf("SpMSpV y[%d]: reference %v, kernel %v", i, ref[i], got[i])
		}
	}
	return nil
}

// CheckCorpusKernels differentially validates every corpus scenario's
// kernel output against the dense references.
func CheckCorpusKernels() error {
	for _, s := range Corpus() {
		am, err := buildMatrix(s)
		if err != nil {
			return err
		}
		a := am.ToCSC()
		switch s.Kernel {
		case "spmspm":
			err = CheckSpMSpM(a, am.ToCSR(), corpusChip.NGPE(), corpusChip.Tiles)
		case "spmspv":
			x := matrix.RandomVec(rand.New(rand.NewSource(s.Seed+100)), a.Cols, 0.5)
			err = CheckSpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
		}
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

// MaxEDPRatio is the accepted ratio of the learned controller's
// energy-delay product to the Ideal Static bound from a brute-force oracle
// recording on the corpus. The paper's controller lands near Ideal Static;
// the bound is deliberately loose (the corpus model is tiny) while still
// catching a controller whose decisions have gone off the rails.
const MaxEDPRatio = 2.5

// EDPReport is the outcome of one controller-vs-oracle cross-check.
type EDPReport struct {
	Scenario       string
	ControllerEDP  float64
	IdealStaticEDP float64
	Ratio          float64
}

// CheckControllerEDP cross-checks every controller scenario in the corpus
// against a brute-force oracle recording of the same workload over the
// widened action space (each sampled configuration priced on its own
// dataflow/format/scheduling variant): the controller's EDP must stay
// within MaxEDPRatio of Ideal Static's. The sampled configuration set is
// deterministic, so the reports are too.
func CheckControllerEDP() ([]EDPReport, error) {
	var reports []EDPReport
	for _, s := range Corpus() {
		if _, isCtl := s.Schedule.(controllerSchedule); !isCtl {
			continue
		}
		out, err := Run(s)
		if err != nil {
			return nil, err
		}
		src, err := s.Source()
		if err != nil {
			return nil, err
		}
		cfgs := oracle.SampleConfigs(rand.New(rand.NewSource(s.Seed+200)), 8, config.CacheMode)
		rec, err := oracle.RecordSource(corpusChip, corpusBW, src, s.EpochScale, cfgs)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: oracle recording: %w", s.Name, err)
		}
		_, ideal := rec.IdealStatic(power.EnergyEfficient)
		edp := func(m power.Metrics) float64 { return m.TimeSec * m.EnergyJ }
		rep := EDPReport{
			Scenario:       s.Name,
			ControllerEDP:  edp(out.Total),
			IdealStaticEDP: edp(ideal),
		}
		if rep.IdealStaticEDP > 0 {
			rep.Ratio = rep.ControllerEDP / rep.IdealStaticEDP
		}
		if rep.Ratio > MaxEDPRatio {
			return reports, fmt.Errorf("scenario %s: controller EDP %.3g is %.2fx Ideal Static's %.3g (limit %.2fx)",
				s.Name, rep.ControllerEDP, rep.Ratio, rep.IdealStaticEDP, MaxEDPRatio)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
