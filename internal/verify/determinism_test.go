package verify

import (
	"context"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/oracle"
)

// TestCorpusDeterminismAcrossWorkers records a corpus workload's oracle
// grid at worker counts 1 and 4 and requires bit-identical results: the
// parallel engine must not leak scheduling into simulation outcomes. CI
// additionally runs the whole verify package with -count=2 at both worker
// counts.
func TestCorpusDeterminismAcrossWorkers(t *testing.T) {
	s, err := ScenarioByName("spmspv-rmat-maxcfg")
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Workload()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []config.Config{config.Baseline, config.BestAvgCache, config.MaxCfg}
	var recs []*oracle.Recording
	for _, workers := range []int{1, 4} {
		eng := engine.New(engine.Options{Workers: workers})
		rec, err := oracle.RecordEngine(context.Background(), eng, corpusChip, corpusBW, w, s.EpochScale, cfgs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		recs = append(recs, rec)
	}
	requireIdenticalGrids(t, recs[0], recs[1])
}

// TestSourceDeterminismAcrossWorkers is the widened-action-space
// counterpart: RecordSource prices configurations spanning every dataflow,
// format and scheduling policy — each on its own lazily traced kernel
// variant — and the records must still be bit-identical at worker counts
// 1 and 4 (variant tracing must not race or depend on schedule order).
func TestSourceDeterminismAcrossWorkers(t *testing.T) {
	s, err := ScenarioByName("spmspm-uniform-format-switch")
	if err != nil {
		t.Fatal(err)
	}
	src, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []config.Config{
		config.Baseline,
		withAlgo(config.Baseline, config.DFInner, config.FmtCSR, config.SchedLL),
		withAlgo(config.BestAvgCache, config.DFRow, config.FmtCOO, config.SchedRR),
		withAlgo(config.MaxCfg, config.DFOuter, config.FmtCSR, config.SchedLL),
	}
	var recs []*oracle.Recording
	for _, workers := range []int{1, 4} {
		eng := engine.New(engine.Options{Workers: workers})
		rec, err := oracle.RecordSourceEngine(context.Background(), eng, nil, corpusChip, corpusBW, src, s.EpochScale, cfgs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		recs = append(recs, rec)
	}
	requireIdenticalGrids(t, recs[0], recs[1])
}

func requireIdenticalGrids(t *testing.T, a, b *oracle.Recording) {
	t.Helper()
	if len(a.Grid) != len(b.Grid) {
		t.Fatalf("grid rows differ: %d vs %d", len(a.Grid), len(b.Grid))
	}
	for s := range a.Grid {
		if len(a.Grid[s]) != len(b.Grid[s]) {
			t.Fatalf("config %d: epoch counts differ: %d vs %d", s, len(a.Grid[s]), len(b.Grid[s]))
		}
		for e := range a.Grid[s] {
			if a.Grid[s][e] != b.Grid[s][e] {
				t.Errorf("config %d epoch %d: 1-worker and 4-worker records differ:\n%+v\n%+v",
					s, e, a.Grid[s][e], b.Grid[s][e])
			}
		}
	}
}
