package verify

import (
	"testing"
)

// TestCorpusKernelsDifferential checks every corpus scenario's kernel
// output against the naive dense references.
func TestCorpusKernelsDifferential(t *testing.T) {
	if err := CheckCorpusKernels(); err != nil {
		t.Error(err)
	}
}

// TestControllerEDP cross-checks the learned controller against the
// brute-force oracle on the corpus: its energy-delay product must stay
// within MaxEDPRatio of Ideal Static's.
func TestControllerEDP(t *testing.T) {
	reports, err := CheckControllerEDP()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no controller scenarios in the corpus")
	}
	for _, r := range reports {
		t.Logf("%s: controller EDP %.3g vs Ideal Static %.3g (%.2fx, limit %.2fx)",
			r.Scenario, r.ControllerEDP, r.IdealStaticEDP, r.Ratio, MaxEDPRatio)
	}
}
