package verify

import (
	"embed"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"sparseadapt/internal/config"
)

// goldenFS carries the committed golden corpus inside the binary, so the
// `sparseadapt verify` subcommand checks the same blessed state the tests
// do, from any working directory.
//
//go:embed golden/*.json
var goldenFS embed.FS

// EpochGold is the committed record of one epoch: an exact digest over the
// epoch's telemetry and metrics (the regression tripwire) plus rounded
// human-readable fields so a diff is interpretable without replaying.
type EpochGold struct {
	Config       int     `json:"config"` // config.Config Index()
	Phase        string  `json:"phase,omitempty"`
	Reconfigured bool    `json:"reconfigured,omitempty"`
	Digest       string  `json:"digest"`
	L1MissRate   float64 `json:"l1_miss_rate"`
	GPEIPC       float64 `json:"gpe_ipc"`
	TimeUS       float64 `json:"time_us"`
	EnergyUJ     float64 `json:"energy_uj"`
}

// Gold is the committed record of one scenario.
type Gold struct {
	Scenario      string      `json:"scenario"`
	Kernel        string      `json:"kernel"`
	Schedule      string      `json:"schedule"`
	Epochs        []EpochGold `json:"epochs"`
	Reconfigs     int         `json:"reconfigs"`
	TotalDigest   string      `json:"total_digest"`
	TotalTimeMS   float64     `json:"total_time_ms"`
	TotalEnergyMJ float64     `json:"total_energy_mj"`
	TotalFPOps    float64     `json:"total_fp_ops"`
	// Decisions is the configuration index entering each epoch — for
	// controller scenarios, the model+policy decision sequence.
	Decisions []int `json:"decisions"`
}

const (
	fnvOffset64 = 1469598103934665603
	fnvPrime64  = 1099511628211
)

// digest64 folds float64 values into an FNV-1a hash over their exact IEEE
// bit patterns. Go's float64 arithmetic is strictly evaluated IEEE 754, so
// equal computations digest equally on every platform; any behavioral
// change — however small — changes the digest.
type digest64 uint64

func newDigest() digest64 { return fnvOffset64 }

func (d digest64) f64(vs ...float64) digest64 {
	h := uint64(d)
	for _, v := range vs {
		b := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= fnvPrime64
		}
	}
	return digest64(h)
}

func (d digest64) hex() string { return fmt.Sprintf("%016x", uint64(d)) }

// epochDigest hashes everything the golden harness pins about one epoch:
// the configuration, the full Table 2 counter vector and the metrics.
func epochDigest(e EpochOutcome) string {
	d := newDigest().f64(float64(e.Config.Index()))
	d = d.f64(e.Result.Counters.Features()...)
	m := e.Result.Metrics
	return d.f64(m.TimeSec, m.EnergyJ, m.FPOps).hex()
}

// round6 trims a value to 6 significant digits for the readable fields.
func round6(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	mag := math.Pow(10, 5-math.Floor(math.Log10(math.Abs(v))))
	return math.Round(v*mag) / mag
}

// Golden reduces a run outcome to its committed form.
func Golden(out *RunOutcome) *Gold {
	g := &Gold{
		Scenario:  out.Scenario.Name,
		Kernel:    out.Scenario.Kernel,
		Schedule:  out.Scenario.Schedule.Name(),
		Reconfigs: out.Reconfig,
	}
	total := newDigest()
	for _, e := range out.Epochs {
		dg := epochDigest(e)
		total = total.f64(float64(e.Config.Index()))
		total = total.f64(e.Result.Metrics.TimeSec, e.Result.Metrics.EnergyJ)
		g.Epochs = append(g.Epochs, EpochGold{
			Config:       e.Config.Index(),
			Phase:        e.Result.Phase,
			Reconfigured: e.Reconfigured,
			Digest:       dg,
			L1MissRate:   round6(e.Result.Counters.L1MissRate),
			GPEIPC:       round6(e.Result.Counters.GPEIPC),
			TimeUS:       round6(e.Result.Metrics.TimeSec * 1e6),
			EnergyUJ:     round6(e.Result.Metrics.EnergyJ * 1e6),
		})
		g.Decisions = append(g.Decisions, e.Config.Index())
	}
	g.TotalDigest = total.hex()
	g.TotalTimeMS = round6(out.Total.TimeSec * 1e3)
	g.TotalEnergyMJ = round6(out.Total.EnergyJ * 1e3)
	g.TotalFPOps = out.Total.FPOps
	return g
}

// goldenFile maps a scenario name to its golden path inside goldenFS.
func goldenFile(name string) string { return "golden/" + name + ".json" }

// LoadGolden reads the committed golden record for a scenario from the
// embedded corpus.
func LoadGolden(name string) (*Gold, error) {
	data, err := goldenFS.ReadFile(goldenFile(name))
	if err != nil {
		return nil, fmt.Errorf("verify: no golden file for scenario %q (run `go test ./internal/verify -run TestGolden -update`): %w", name, err)
	}
	g := &Gold{}
	if err := json.Unmarshal(data, g); err != nil {
		return nil, fmt.Errorf("verify: golden file for %q: %w", name, err)
	}
	return g, nil
}

// GoldenNames lists the scenarios with committed golden files.
func GoldenNames() []string {
	entries, err := goldenFS.ReadDir("golden")
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		n := e.Name()
		if filepath.Ext(n) == ".json" {
			out = append(out, n[:len(n)-len(".json")])
		}
	}
	sort.Strings(out)
	return out
}

// WriteGolden re-blesses one scenario's golden file under dir (the package
// source directory when invoked via the test -update flag).
func WriteGolden(dir string, g *Gold) error {
	data, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, g.Scenario+".json"), append(data, '\n'), 0o644)
}

// Diff compares a freshly computed golden record against the committed one
// and returns human-readable mismatch lines, each naming the scenario, the
// epoch and the field. An empty slice means exact agreement. maxLines
// truncates long diffs (0 = unlimited).
func Diff(committed, got *Gold, maxLines int) []string {
	var out []string
	add := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	name := committed.Scenario
	if committed.Schedule != got.Schedule {
		add("%s: schedule: committed %q, got %q", name, committed.Schedule, got.Schedule)
	}
	if len(committed.Epochs) != len(got.Epochs) {
		add("%s: epoch count: committed %d, got %d", name, len(committed.Epochs), len(got.Epochs))
	}
	n := len(committed.Epochs)
	if len(got.Epochs) < n {
		n = len(got.Epochs)
	}
	for i := 0; i < n; i++ {
		c, g := committed.Epochs[i], got.Epochs[i]
		if c.Config != g.Config {
			add("%s: epoch %d: config: committed %v (#%d), got %v (#%d)",
				name, i, cfgString(c.Config), c.Config, cfgString(g.Config), g.Config)
		}
		if c.Reconfigured != g.Reconfigured {
			add("%s: epoch %d: reconfigured: committed %v, got %v", name, i, c.Reconfigured, g.Reconfigured)
		}
		if c.Phase != g.Phase {
			add("%s: epoch %d: phase: committed %q, got %q", name, i, c.Phase, g.Phase)
		}
		if c.Digest != g.Digest {
			add("%s: epoch %d: digest: committed %s, got %s (l1-miss %v→%v, ipc %v→%v, time %vus→%vus, energy %vuJ→%vuJ)",
				name, i, c.Digest, g.Digest,
				c.L1MissRate, g.L1MissRate, c.GPEIPC, g.GPEIPC,
				c.TimeUS, g.TimeUS, c.EnergyUJ, g.EnergyUJ)
		}
	}
	if committed.Reconfigs != got.Reconfigs {
		add("%s: reconfig count: committed %d, got %d", name, committed.Reconfigs, got.Reconfigs)
	}
	if committed.TotalDigest != got.TotalDigest {
		add("%s: total digest: committed %s, got %s (time %vms→%vms, energy %vmJ→%vmJ)",
			name, committed.TotalDigest, got.TotalDigest,
			committed.TotalTimeMS, got.TotalTimeMS,
			committed.TotalEnergyMJ, got.TotalEnergyMJ)
	}
	if committed.TotalFPOps != got.TotalFPOps {
		add("%s: total FP-ops: committed %v, got %v", name, committed.TotalFPOps, got.TotalFPOps)
	}
	if maxLines > 0 && len(out) > maxLines {
		trimmed := len(out) - maxLines
		out = append(out[:maxLines], fmt.Sprintf("%s: ... %d more mismatches", name, trimmed))
	}
	return out
}

// cfgString renders a golden config index readably.
func cfgString(idx int) string {
	if idx < 0 || idx >= config.SpaceSize() {
		return fmt.Sprintf("invalid(%d)", idx)
	}
	return config.FromIndex(idx).String()
}
