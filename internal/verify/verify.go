// Package verify is the repository's end-to-end correctness subsystem: the
// safety net that makes cross-package behavioral regressions visible even
// when every unit test stays green. It has three pillars:
//
//   - A golden-trace regression harness: a canonical corpus of small
//     scenarios (kernel × matrix structure × configuration schedule) whose
//     per-epoch counter digests, energy totals and controller decision
//     sequences are committed as golden JSON files. Any change to the
//     simulator, power model, kernels, controller or trainer that shifts
//     observable behavior fails the comparison with a readable diff naming
//     the scenario, epoch and field; intentional changes re-bless the
//     corpus with `go test ./internal/verify -run TestGolden -update`.
//
//   - Differential checking: naive dense reference implementations of each
//     sparse kernel validated against the traced kernels, and a cross-check
//     that the learned controller's energy-delay product stays within a
//     configured ratio of the brute-force oracle's Ideal Static bound on
//     the corpus.
//
//   - A property-based/metamorphic framework (prop.go, invariants.go) with
//     seeded generators asserting physical invariants of the model — cache
//     misses monotone in capacity, power monotone in frequency, FLOPs
//     invariant under row permutation, reconfiguration penalties exactly
//     conserved — where every failure reports the seed that replays it.
//
// The `sparseadapt verify` subcommand runs all three pillars; CI runs them
// on every push at two worker counts to pin down scheduling determinism.
package verify

import (
	"fmt"
	"math/rand"
	"sync"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

// corpusChip is the machine topology every corpus scenario runs on: half
// the paper's 2×8 system, big enough to exercise sharing/contention and
// small enough that the whole corpus replays in a couple of seconds.
var corpusChip = power.Chip{Tiles: 2, GPEsPerTile: 4}

// corpusBW is the corpus off-chip bandwidth (the paper's deployment point).
const corpusBW = 1e9

// Schedule decides the configuration for the next epoch of a scenario run.
type Schedule interface {
	// Name identifies the schedule in golden files and reports.
	Name() string
	// Start returns the initial configuration.
	Start() config.Config
	// Next returns the configuration to enter epoch i+1 with, given the
	// epoch-i result (the machine currently holds cur). Static schedules
	// return cur unchanged.
	Next(i int, cur config.Config, r sim.EpochResult) config.Config
}

// staticSchedule holds one configuration for the whole run.
type staticSchedule struct {
	name string
	cfg  config.Config
}

func (s staticSchedule) Name() string         { return s.name }
func (s staticSchedule) Start() config.Config { return s.cfg }
func (s staticSchedule) Next(int, config.Config, sim.EpochResult) config.Config {
	return s.cfg
}

// alternateSchedule flips between two configurations every `period` epochs,
// exercising Reconfigure (flushes, resizes, prefetcher resets) on a fixed,
// model-free cadence.
type alternateSchedule struct {
	a, b   config.Config
	period int
}

func (s alternateSchedule) Name() string         { return "alternate" }
func (s alternateSchedule) Start() config.Config { return s.a }
func (s alternateSchedule) Next(i int, _ config.Config, _ sim.EpochResult) config.Config {
	if ((i+1)/s.period)%2 == 1 {
		return s.b
	}
	return s.a
}

// controllerSchedule drives the run through the real core.Controller with a
// deterministic corpus-trained model, so golden decision sequences cover
// the model/controller layers too.
type controllerSchedule struct {
	mode power.Mode
}

func (s controllerSchedule) Name() string {
	return "controller-" + s.mode.String()
}
func (s controllerSchedule) Start() config.Config { return config.Baseline }
func (s controllerSchedule) Next(int, config.Config, sim.EpochResult) config.Config {
	panic("verify: controller schedule is driven by core.Controller, not Next")
}

// Scenario is one corpus entry: a workload recipe plus a config schedule.
type Scenario struct {
	Name       string
	Kernel     string // "spmspm" or "spmspv"
	Gen        string // matrix generator: uniform|banded|rmat|strips
	Dim        int
	NNZ        int
	Seed       int64
	Schedule   Schedule
	EpochScale float64
}

// Corpus returns the canonical scenario set. Names are stable identifiers:
// golden files are keyed by them, and `sparseadapt verify -scenario` selects
// by them. Keep additions append-only; renaming a scenario orphans its
// golden file.
func Corpus() []Scenario {
	return []Scenario{
		{
			Name: "spmspv-uniform-baseline", Kernel: "spmspv", Gen: "uniform",
			Dim: 96, NNZ: 700, Seed: 1,
			Schedule:   staticSchedule{"static-baseline", config.Baseline},
			EpochScale: 0.05,
		},
		{
			Name: "spmspv-rmat-maxcfg", Kernel: "spmspv", Gen: "rmat",
			Dim: 64, NNZ: 500, Seed: 2,
			Schedule:   staticSchedule{"static-maxcfg", config.MaxCfg},
			EpochScale: 0.05,
		},
		{
			Name: "spmspv-banded-alternate", Kernel: "spmspv", Gen: "banded",
			Dim: 96, NNZ: 600, Seed: 3,
			Schedule:   alternateSchedule{a: config.BestAvgCache, b: config.MaxCfg, period: 2},
			EpochScale: 0.05,
		},
		{
			Name: "spmspv-uniform-spm", Kernel: "spmspv", Gen: "uniform",
			Dim: 80, NNZ: 500, Seed: 4,
			Schedule:   staticSchedule{"static-bestavg-spm", config.BestAvgSPM},
			EpochScale: 0.05,
		},
		{
			Name: "spmspv-uniform-controller-ee", Kernel: "spmspv", Gen: "uniform",
			Dim: 96, NNZ: 700, Seed: 1,
			Schedule:   controllerSchedule{mode: power.EnergyEfficient},
			EpochScale: 0.05,
		},
		{
			Name: "spmspm-uniform-baseline", Kernel: "spmspm", Gen: "uniform",
			Dim: 48, NNZ: 350, Seed: 5,
			Schedule:   staticSchedule{"static-baseline", config.Baseline},
			EpochScale: 0.02,
		},
		{
			Name: "spmspm-strips-bestavg", Kernel: "spmspm", Gen: "strips",
			Dim: 48, NNZ: 0, Seed: 6, // strips sizes by density, not NNZ
			Schedule:   staticSchedule{"static-bestavg", config.BestAvgCache},
			EpochScale: 0.02,
		},
		{
			Name: "spmspm-banded-alternate", Kernel: "spmspm", Gen: "banded",
			Dim: 48, NNZ: 400, Seed: 7,
			Schedule:   alternateSchedule{a: config.Baseline, b: config.BestAvgCache, period: 3},
			EpochScale: 0.02,
		},
		{
			Name: "spmspm-uniform-inner", Kernel: "spmspm", Gen: "uniform",
			Dim: 48, NNZ: 350, Seed: 8,
			Schedule:   staticSchedule{"static-inner-csr", withAlgo(config.Baseline, config.DFInner, config.FmtCSR, config.SchedRR)},
			EpochScale: 0.02,
		},
		{
			Name: "spmspm-banded-row", Kernel: "spmspm", Gen: "banded",
			Dim: 48, NNZ: 400, Seed: 9,
			Schedule:   staticSchedule{"static-row-csr", withAlgo(config.Baseline, config.DFRow, config.FmtCSR, config.SchedRR)},
			EpochScale: 0.02,
		},
		{
			// Mid-run CSR→CSC format switches on the outer dataflow: the
			// alternate schedule crosses the Format axis, exercising the
			// algorithmic reconfiguration path (conversion charge, full
			// flush, trace rebind onto the aligned epoch grid).
			Name: "spmspm-uniform-format-switch", Kernel: "spmspm", Gen: "uniform",
			Dim: 48, NNZ: 350, Seed: 10,
			Schedule: alternateSchedule{
				a:      withAlgo(config.Baseline, config.DFOuter, config.FmtCSR, config.SchedRR),
				b:      config.Baseline, // natural point: outer/csc/rr
				period: 3,
			},
			EpochScale: 0.02,
		},
		{
			Name: "spmspv-uniform-coo-ll", Kernel: "spmspv", Gen: "uniform",
			Dim: 80, NNZ: 500, Seed: 11,
			Schedule:   staticSchedule{"static-coo-ll", withAlgo(config.Baseline, config.DFOuter, config.FmtCOO, config.SchedLL)},
			EpochScale: 0.05,
		},
	}
}

// withAlgo returns c with its algorithm axes set, for schedule literals.
func withAlgo(c config.Config, dataflow, format, sched int) config.Config {
	c[config.Dataflow], c[config.Format], c[config.SchedPolicy] = dataflow, format, sched
	return c
}

// ScenarioByName finds a corpus scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Corpus() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("verify: unknown scenario %q", name)
}

// buildMatrix realizes the scenario's matrix recipe.
func buildMatrix(s Scenario) (*matrix.COO, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Gen {
	case "uniform":
		return matrix.Uniform(rng, s.Dim, s.Dim, s.NNZ), nil
	case "banded":
		return matrix.Banded(rng, s.Dim, s.NNZ, 6), nil
	case "rmat":
		return matrix.RMATDefault(rng, s.Dim, s.NNZ), nil
	case "strips":
		return matrix.DenseStrips(rng, s.Dim, 0.12, 3), nil
	default:
		return nil, fmt.Errorf("verify: unknown generator %q", s.Gen)
	}
}

// Workload builds the scenario's kernel workload (deterministic in Seed).
func (s Scenario) Workload() (kernels.Workload, error) {
	am, err := buildMatrix(s)
	if err != nil {
		return kernels.Workload{}, err
	}
	a := am.ToCSC()
	switch s.Kernel {
	case "spmspm":
		_, w, err := kernels.SpMSpM(a, am.ToCSR(), corpusChip.NGPE(), corpusChip.Tiles)
		return w, err
	case "spmspv":
		x := matrix.RandomVec(rand.New(rand.NewSource(s.Seed+100)), a.Cols, 0.5)
		_, w, err := kernels.SpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
		return w, err
	default:
		return kernels.Workload{}, fmt.Errorf("verify: unknown kernel %q", s.Kernel)
	}
}

// Source builds the scenario's kernel source (deterministic in Seed): the
// variant cache behind runs over the widened dataflow/format/scheduling
// action space.
func (s Scenario) Source() (*kernels.Source, error) {
	am, err := buildMatrix(s)
	if err != nil {
		return nil, err
	}
	a := am.ToCSC()
	switch s.Kernel {
	case "spmspm":
		return kernels.NewSpMSpMSource(s.Name, a, am.ToCSR(), corpusChip.NGPE(), corpusChip.Tiles), nil
	case "spmspv":
		x := matrix.RandomVec(rand.New(rand.NewSource(s.Seed+100)), a.Cols, 0.5)
		return kernels.NewSpMSpVSource(s.Name, a, x, corpusChip.NGPE(), corpusChip.Tiles), nil
	default:
		return nil, fmt.Errorf("verify: unknown kernel %q", s.Kernel)
	}
}

// corpusModel lazily trains the deterministic tiny model the controller
// scenarios run under. The sweep is fixed — independent of experiment
// scales — so the decision sequences in golden files only move when the
// trainer, ml, sim or power layers change behavior, which is the point.
var corpusModel = struct {
	once sync.Once
	ens  *core.Ensemble
	err  error
}{}

// Model returns the corpus controller model (trained once per process).
func Model() (*core.Ensemble, error) {
	corpusModel.once.Do(func() {
		sw := trainer.SweepSpec{
			Kernel: "spmspv", L1Type: config.CacheMode,
			Dims: []int{32, 64}, Densities: []float64{0.02, 0.08},
			BandwidthsGBps: []float64{0.5, 2},
			K:              4, Seed: 9, Chip: corpusChip,
			EpochScale: 0.05, Warmup: 1, Measure: 1,
		}
		ds, err := trainer.Generate(sw, power.EnergyEfficient)
		if err != nil {
			corpusModel.err = fmt.Errorf("verify: training corpus model: %w", err)
			return
		}
		corpusModel.ens, corpusModel.err = trainer.Train(ds, ml.TreeParams{
			Criterion: ml.Gini, MaxDepth: 6, MinSamplesLeaf: 3,
		})
	})
	return corpusModel.ens, corpusModel.err
}

// EpochOutcome is one epoch of a scenario run, in the exact form the golden
// digests are computed over.
type EpochOutcome struct {
	Config       config.Config
	Reconfigured bool
	Result       sim.EpochResult
}

// RunOutcome is a full scenario execution.
type RunOutcome struct {
	Scenario Scenario
	Total    power.Metrics
	Epochs   []EpochOutcome
	Reconfig int
}

// Run executes the scenario and returns every epoch's outcome. Every run
// goes through the scenario's kernel source on the work-aligned epoch grid
// (sim.Trace.EpochsN anchored to the natural variant), so schedules that
// cross the dataflow/format/scheduling axes rebind onto the matching
// variant trace mid-run; schedules that stay on one algorithm point replay
// a single variant end to end.
func Run(s Scenario) (*RunOutcome, error) {
	src, err := s.Source()
	if err != nil {
		return nil, err
	}
	if _, isCtl := s.Schedule.(controllerSchedule); isCtl {
		return runController(s, src)
	}
	nEpochs, _, err := src.GridEpochs(s.EpochScale)
	if err != nil {
		return nil, err
	}
	start := s.Schedule.Start()
	w, err := src.Variant(start)
	if err != nil {
		return nil, err
	}
	m := sim.New(corpusChip, corpusBW, start)
	m.BindTrace(w.Trace)
	eps := w.Trace.EpochsN(nEpochs)
	out := &RunOutcome{Scenario: s}
	reconfigured := false
	for i := 0; i < nEpochs && i < len(eps); i++ {
		r := m.RunEpoch(eps[i])
		out.Total.Add(r.Metrics)
		out.Epochs = append(out.Epochs, EpochOutcome{Config: m.Config(), Reconfigured: reconfigured, Result: r})
		next := s.Schedule.Next(i, m.Config(), r)
		reconfigured = false
		if next != m.Config() {
			oldKey, newKey := src.Key(kernels.AlgoOf(m.Config())), src.Key(kernels.AlgoOf(next))
			if _, err := m.Reconfigure(next); err != nil {
				return nil, fmt.Errorf("verify: scenario %s epoch %d: %w", s.Name, i, err)
			}
			out.Reconfig++
			reconfigured = true
			if oldKey != newKey {
				w, err = src.Variant(next)
				if err != nil {
					return nil, fmt.Errorf("verify: scenario %s epoch %d: %w", s.Name, i, err)
				}
				m.BindTrace(w.Trace)
				eps = w.Trace.EpochsN(nEpochs)
			}
		}
	}
	return out, nil
}

// runController executes a controller scenario through core.Controller
// over the full widened action space (Controller.RunSource).
func runController(s Scenario, src *kernels.Source) (*RunOutcome, error) {
	ens, err := Model()
	if err != nil {
		return nil, err
	}
	sched := s.Schedule.(controllerSchedule)
	m := sim.New(corpusChip, corpusBW, sched.Start())
	ctl := core.NewController(ens, core.Options{
		Policy: core.Hybrid, Tolerance: 0.4, EpochScale: s.EpochScale,
	})
	res, err := ctl.RunSource(m, src)
	if err != nil {
		return nil, err
	}
	out := &RunOutcome{Scenario: s, Total: res.Total, Reconfig: res.Reconfig}
	for _, ep := range res.Epochs {
		out.Epochs = append(out.Epochs, EpochOutcome{
			Config:       ep.Config,
			Reconfigured: ep.Reconfigured,
			Result: sim.EpochResult{
				Metrics: ep.Metrics, Counters: ep.Counters, Phase: ep.Phase,
			},
		})
	}
	return out, nil
}
