package verify

import (
	"flag"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "re-bless the golden corpus from current behavior")

// TestGolden replays every corpus scenario and compares against the
// committed golden records. Run with -update after an intentional
// behavioral change to re-bless the corpus (and review the diff in git).
func TestGolden(t *testing.T) {
	for _, s := range Corpus() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			out, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			got := Golden(out)
			if *update {
				if err := WriteGolden("golden", got); err != nil {
					t.Fatal(err)
				}
				t.Logf("re-blessed golden/%s.json (%d epochs)", s.Name, len(got.Epochs))
				return
			}
			committed, err := LoadGolden(s.Name)
			if err != nil {
				t.Fatal(err)
			}
			if lines := Diff(committed, got, 20); len(lines) > 0 {
				t.Errorf("golden mismatch (intentional change? run `go test ./internal/verify -run TestGolden -update`):\n%s",
					strings.Join(lines, "\n"))
			}
		})
	}
}

// TestGoldenCoversCorpus pins the committed golden set to exactly the
// corpus: a scenario added without re-blessing, or a stale orphaned golden
// file, both fail.
func TestGoldenCoversCorpus(t *testing.T) {
	if *update {
		t.Skip("updating")
	}
	var want []string
	for _, s := range Corpus() {
		want = append(want, s.Name)
	}
	sort.Strings(want)
	got := GoldenNames()
	if len(got) != len(want) {
		t.Fatalf("committed golden files %v\nwant exactly the corpus %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed golden files %v\nwant exactly the corpus %v", got, want)
		}
	}
}

// TestGoldenDeterministic replays one scenario of each schedule kind twice
// and requires digest-identical outcomes — the property the whole golden
// pillar rests on.
func TestGoldenDeterministic(t *testing.T) {
	for _, name := range []string{"spmspv-uniform-baseline", "spmspv-banded-alternate", "spmspv-uniform-controller-ee"} {
		s, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if ga, gb := Golden(a), Golden(b); ga.TotalDigest != gb.TotalDigest {
			t.Errorf("%s: two identical runs digested %s and %s", name, ga.TotalDigest, gb.TotalDigest)
		}
	}
}

// TestDiffNamesScenario exercises the diff formatter on a corrupted record:
// every reported line must name the scenario, and a digest flip must be
// reported with its context fields.
func TestDiffNamesScenario(t *testing.T) {
	s, err := ScenarioByName("spmspv-uniform-baseline")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	g := Golden(out)
	bad := *g
	bad.Epochs = append([]EpochGold(nil), g.Epochs...)
	bad.Epochs[0].Digest = "0000000000000000"
	bad.TotalDigest = "ffffffffffffffff"
	lines := Diff(&bad, g, 0)
	if len(lines) != 2 {
		t.Fatalf("corrupting one epoch digest and the total digest produced %d diff lines: %v", len(lines), lines)
	}
	for _, l := range lines {
		if !strings.Contains(l, s.Name) {
			t.Errorf("diff line does not name the scenario: %q", l)
		}
	}
	if !strings.Contains(lines[0], "epoch 0") {
		t.Errorf("diff line does not name the epoch: %q", lines[0])
	}

	// Truncation names the scenario too and bounds the output.
	bad2 := *g
	bad2.Epochs = nil
	bad2.Schedule = "other"
	bad2.Reconfigs = 99
	if got := Diff(&bad2, g, 1); len(got) != 2 || !strings.Contains(got[1], "more mismatches") {
		t.Errorf("maxLines=1 returned %v", got)
	}
}
