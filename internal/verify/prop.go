package verify

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
)

// The property framework: each invariant is a predicate over a seeded
// random case. The runner derives one seed per case from a base seed, so
// any failure is replayable in isolation — the error always names the
// exact seed, and VERIFY_SEED pins the whole suite to it.

// Invariant is one property of the system checked across many seeded
// random cases.
type Invariant struct {
	// Name identifies the invariant in reports and -invariant selection.
	Name string
	// Doc is a one-line statement of the property.
	Doc string
	// Cases is the default number of seeded cases (scaled by VERIFY_CASES
	// or the runner's cases argument).
	Cases int
	// Check runs one case with the given deterministic RNG and returns an
	// error describing the violation, if any.
	Check func(rng *rand.Rand) error
}

// DefaultBaseSeed seeds the case derivation when the caller does not
// choose one.
const DefaultBaseSeed = 1

// caseSeed derives the seed of case i under base, mixing with
// splitmix64-style constants so neighbouring bases do not share case
// streams.
func caseSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z^(z>>31)) & 0x7fffffffffffffff
}

// RunInvariant checks one invariant across `cases` seeded cases (Cases
// when 0). The returned error names the invariant and the replay seed of
// the first failing case.
func RunInvariant(inv Invariant, base int64, cases int) error {
	if cases <= 0 {
		cases = inv.Cases
	}
	if s := os.Getenv("VERIFY_SEED"); s != "" {
		// Replay mode: one case, exactly the given seed.
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("verify: bad VERIFY_SEED %q: %v", s, err)
		}
		if err := inv.Check(rand.New(rand.NewSource(seed))); err != nil {
			return fmt.Errorf("invariant %s: seed %d: %w (replay with VERIFY_SEED=%d)", inv.Name, seed, err, seed)
		}
		return nil
	}
	for i := 0; i < cases; i++ {
		seed := caseSeed(base, i)
		if err := inv.Check(rand.New(rand.NewSource(seed))); err != nil {
			return fmt.Errorf("invariant %s: case %d/%d: %w (replay with VERIFY_SEED=%d)", inv.Name, i, cases, err, seed)
		}
	}
	return nil
}

// CasesOverride reads VERIFY_CASES (0 = use each invariant's default).
func CasesOverride() int {
	if s := os.Getenv("VERIFY_CASES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}
