package verify

import (
	"testing"
)

// BenchmarkScenarioReplay times a full static corpus scenario — kernel
// trace generation plus the epoch replay loop. This is the macro number the
// committed BENCH_BASELINE.json tracks: a regression here means the
// simulator or kernels got slower.
func BenchmarkScenarioReplay(b *testing.B) {
	s, err := ScenarioByName("spmspv-uniform-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoldenDigest times reducing a run outcome to its golden record
// (the FNV digest path).
func BenchmarkGoldenDigest(b *testing.B) {
	s, err := ScenarioByName("spmspv-uniform-baseline")
	if err != nil {
		b.Fatal(err)
	}
	out, err := Run(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Golden(out)
	}
}
