package verify

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestInvariants runs the full metamorphic suite. Each invariant checks at
// least 100 seeded cases; any failure message carries the replay seed
// (re-run a single case with VERIFY_SEED=<seed>, shrink the suite with
// VERIFY_CASES=<n>).
func TestInvariants(t *testing.T) {
	cases := CasesOverride()
	for _, inv := range Invariants() {
		inv := inv
		t.Run(inv.Name, func(t *testing.T) {
			t.Parallel()
			if inv.Cases < 100 {
				t.Errorf("invariant %s declares only %d cases; the suite guarantees >=100", inv.Name, inv.Cases)
			}
			if err := RunInvariant(inv, DefaultBaseSeed, cases); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestInvariantRegistry pins registry hygiene: unique names, docs present,
// and lookup by name working.
func TestInvariantRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, inv := range Invariants() {
		if inv.Name == "" || inv.Doc == "" || inv.Check == nil {
			t.Fatalf("invariant %+v is incomplete", inv.Name)
		}
		if seen[inv.Name] {
			t.Fatalf("duplicate invariant name %q", inv.Name)
		}
		seen[inv.Name] = true
		got, err := InvariantByName(inv.Name)
		if err != nil || got.Name != inv.Name {
			t.Fatalf("InvariantByName(%q) = %v, %v", inv.Name, got.Name, err)
		}
	}
	if _, err := InvariantByName("no-such-invariant"); err == nil {
		t.Fatal("InvariantByName accepted an unknown name")
	}
}

// TestRunInvariantReportsSeed verifies the failure path: the error of a
// failing case must carry the replayable seed.
func TestRunInvariantReportsSeed(t *testing.T) {
	calls := 0
	inv := Invariant{
		Name:  "always-fails",
		Doc:   "test fixture",
		Cases: 5,
		Check: func(rng *rand.Rand) error { calls++; return errors.New("boom") },
	}
	err := RunInvariant(inv, 42, 0)
	if err == nil {
		t.Fatal("failing invariant returned nil")
	}
	if calls != 1 {
		t.Fatalf("runner continued after first failure: %d calls", calls)
	}
	got := err.Error()
	if !strings.Contains(got, "replay with VERIFY_SEED=") || !strings.Contains(got, "always-fails") {
		t.Fatalf("error %q does not carry the invariant name and replay seed", got)
	}
}
