package verify

import (
	"bytes"
	"fmt"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/oracle"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// The metamorphic invariants: physical and structural properties the model
// must satisfy for *every* input, checked over seeded random cases. Unlike
// the golden corpus (which pins exact behavior of a few scenarios), these
// catch whole classes of defects — a cache that loses capacity, a DVFS curve
// that inverts, a kernel that miscounts work — anywhere in the input space.

// Invariants returns the full registry in a stable order.
func Invariants() []Invariant {
	return []Invariant{
		{
			Name:  "config-index-bijection",
			Doc:   "Config Index/FromIndex round-trip; all Neighbors are valid",
			Cases: 200,
			Check: checkConfigBijection,
		},
		{
			Name:  "matrix-roundtrip",
			Doc:   "COO/CSR/CSC conversions and MatrixMarket write/read preserve the matrix",
			Cases: 150,
			Check: checkMatrixRoundtrip,
		},
		{
			Name:  "kernel-differential-spmspv",
			Doc:   "Traced SpMSpV matches the dense reference on random inputs",
			Cases: 120,
			Check: checkDifferentialSpMSpV,
		},
		{
			Name:  "kernel-differential-spmspm",
			Doc:   "Traced SpMSpM matches the dense reference on random inputs",
			Cases: 100,
			Check: checkDifferentialSpMSpM,
		},
		{
			Name:  "flops-invariant-row-permutation",
			Doc:   "Row-permuting A leaves SpMSpV trace FLOPs unchanged and permutes y",
			Cases: 100,
			Check: checkFLOPsRowPermutation,
		},
		{
			Name:  "power-monotone-frequency",
			Doc:   "Voltage, DVFS scale and average power are monotone in clock frequency",
			Cases: 200,
			Check: checkPowerMonotoneFrequency,
		},
		{
			Name:  "energy-monotone-counts",
			Doc:   "Epoch energy is monotone in every event count and in elapsed time",
			Cases: 200,
			Check: checkEnergyMonotoneCounts,
		},
		{
			Name:  "cache-miss-monotone-capacity",
			Doc:   "L1 miss rate is monotone non-increasing in L1 capacity",
			Cases: 100,
			Check: checkMissMonotoneCapacity,
		},
		{
			Name:  "reconfig-penalty-conserved",
			Doc:   "Reconfiguration cycles and flush traffic are exactly conserved in the next epoch",
			Cases: 100,
			Check: checkReconfigConserved,
		},
		{
			Name:  "epochs-partition-trace",
			Doc:   "Epoch ranges partition the trace and conserve its FP-op total",
			Cases: 120,
			Check: checkEpochsPartition,
		},
		{
			Name:  "oracle-ee-bound",
			Doc:   "Oracle(EE) total energy never exceeds Ideal Static's; constant sequences price as statics",
			Cases: 100,
			Check: checkOracleEEBound,
		},
		{
			Name:  "history-feature-padding",
			Doc:   "History windows pad to constant width by repeating the oldest frame",
			Cases: 200,
			Check: checkHistoryPadding,
		},
		{
			Name:  "dataflow-equivalence",
			Doc:   "SpMSpM numeric result matches the dense reference and arithmetic FLOPs are identical across dataflow/format/sched variants",
			Cases: 100,
			Check: checkDataflowEquivalence,
		},
		{
			Name:  "format-roundtrip",
			Doc:   "Direct CSR/CSC/COO converters are exact inverses and produce structurally valid matrices",
			Cases: 120,
			Check: checkFormatRoundtrip,
		},
		{
			Name:  "conversion-cost-conserved",
			Doc:   "Format-switch conversion cycles match the cost model and are exactly conserved in epoch accounting",
			Cases: 100,
			Check: checkConversionCostConserved,
		},
	}
}

// InvariantByName finds a registered invariant.
func InvariantByName(name string) (Invariant, error) {
	for _, inv := range Invariants() {
		if inv.Name == name {
			return inv, nil
		}
	}
	return Invariant{}, fmt.Errorf("verify: unknown invariant %q", name)
}

// randomConfig draws a uniformly random valid configuration.
func randomConfig(rng *rand.Rand) config.Config {
	var c config.Config
	for p := config.Param(0); p < config.NumParams; p++ {
		c[p] = rng.Intn(config.Cardinality(p))
	}
	return c
}

func checkConfigBijection(rng *rand.Rand) error {
	c := randomConfig(rng)
	if !c.Valid() {
		return fmt.Errorf("randomConfig produced invalid %v", c)
	}
	idx := c.Index()
	if idx < 0 || idx >= config.SpaceSize() {
		return fmt.Errorf("config %v: index %d outside [0,%d)", c, idx, config.SpaceSize())
	}
	if back := config.FromIndex(idx); back != c {
		return fmt.Errorf("config %v: FromIndex(Index)=%v", c, back)
	}
	idx = rng.Intn(config.SpaceSize())
	c = config.FromIndex(idx)
	if !c.Valid() {
		return fmt.Errorf("FromIndex(%d)=%v is invalid", idx, c)
	}
	if c.Index() != idx {
		return fmt.Errorf("Index(FromIndex(%d))=%d", idx, c.Index())
	}
	for _, n := range config.Neighbors(c) {
		if !n.Valid() {
			return fmt.Errorf("config %v: invalid neighbor %v", c, n)
		}
		if n == c {
			return fmt.Errorf("config %v listed as its own neighbor", c)
		}
	}
	return nil
}

func checkMatrixRoundtrip(rng *rand.Rand) error {
	n := 4 + rng.Intn(40)
	m := 4 + rng.Intn(40)
	nnz := rng.Intn(n*m/2 + 1)
	a := matrix.Uniform(rng, n, m, nnz)
	if err := a.Validate(); err != nil {
		return fmt.Errorf("generated matrix: %w", err)
	}
	csr := a.ToCSR()
	// CSR->COO->CSR starts from merged entries, so it must be bit-exact.
	if got := csr.ToCOO().ToCSR(); !csr.Equal(got, 0) {
		return fmt.Errorf("%dx%d nnz=%d: CSR->COO->CSR changed the matrix", n, m, a.NNZ())
	}
	// Paths that re-merge the raw COO (which may hold duplicate
	// coordinates) sum duplicates in a different order, so they agree only
	// to rounding.
	if got := a.ToCSC().ToCSR(); !csr.Equal(got, refTol) {
		return fmt.Errorf("%dx%d nnz=%d: CSC->CSR disagrees with COO->CSR", n, m, a.NNZ())
	}
	var buf bytes.Buffer
	if err := matrix.WriteMatrixMarket(&buf, a); err != nil {
		return fmt.Errorf("WriteMatrixMarket: %w", err)
	}
	back, err := matrix.ReadMatrixMarket(&buf)
	if err != nil {
		return fmt.Errorf("ReadMatrixMarket of own output: %w", err)
	}
	if got := back.ToCSR(); !csr.Equal(got, refTol) {
		return fmt.Errorf("%dx%d nnz=%d: MatrixMarket round-trip changed the matrix", n, m, a.NNZ())
	}
	return nil
}

func checkDifferentialSpMSpV(rng *rand.Rand) error {
	n := 8 + rng.Intn(56)
	a := matrix.Uniform(rng, n, n, 1+rng.Intn(n*4)).ToCSC()
	x := matrix.RandomVec(rng, n, 0.1+0.8*rng.Float64())
	return CheckSpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
}

func checkDifferentialSpMSpM(rng *rand.Rand) error {
	n := 8 + rng.Intn(32)
	a := matrix.Uniform(rng, n, n, 1+rng.Intn(n*3))
	b := matrix.Uniform(rng, n, n, 1+rng.Intn(n*3))
	return CheckSpMSpM(a.ToCSC(), b.ToCSR(), corpusChip.NGPE(), corpusChip.Tiles)
}

// traceFPOps totals the FP events of a workload trace via its epoching.
func traceFPOps(w kernels.Workload) int {
	tot := 0
	for _, ep := range w.Epochs(1) {
		tot += ep.FPOps
	}
	return tot
}

func checkFLOPsRowPermutation(rng *rand.Rand) error {
	n := 8 + rng.Intn(40)
	a := matrix.Uniform(rng, n, n, 1+rng.Intn(n*3))
	x := matrix.RandomVec(rng, n, 0.5)
	perm := rng.Perm(n)
	pa := matrix.NewCOO(n, n)
	for i := range a.V {
		pa.Add(perm[a.R[i]], a.C[i], a.V[i])
	}
	y1, w1, err := kernels.SpMSpV(a.ToCSC(), x, corpusChip.NGPE(), corpusChip.Tiles)
	if err != nil {
		return err
	}
	y2, w2, err := kernels.SpMSpV(pa.ToCSC(), x, corpusChip.NGPE(), corpusChip.Tiles)
	if err != nil {
		return err
	}
	f1, f2 := traceFPOps(w1), traceFPOps(w2)
	if f1 != f2 {
		return fmt.Errorf("n=%d: trace FP-ops changed under row permutation: %d vs %d", n, f1, f2)
	}
	d1, d2 := y1.Dense(), y2.Dense()
	for i := range d1 {
		if !closeRel(d1[i], d2[perm[i]]) {
			return fmt.Errorf("n=%d: y[%d]=%v but permuted y[%d]=%v", n, i, d1[i], perm[i], d2[perm[i]])
		}
	}
	return nil
}

func checkPowerMonotoneFrequency(rng *rand.Rand) error {
	// Voltage and scale curves over random frequency pairs.
	f1 := 10 + rng.Float64()*1500
	f2 := 10 + rng.Float64()*1500
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	if power.Voltage(f1) > power.Voltage(f2)+1e-12 {
		return fmt.Errorf("Voltage(%v)=%v > Voltage(%v)=%v", f1, power.Voltage(f1), f2, power.Voltage(f2))
	}
	if power.Scale(f1) > power.Scale(f2)+1e-12 {
		return fmt.Errorf("Scale(%v)=%v > Scale(%v)=%v", f1, power.Scale(f1), f2, power.Scale(f2))
	}
	// Average power of a fixed compute-bound epoch under a DVFS sweep: the
	// same cycles and events finish faster and at higher voltage as the
	// clock rises, so power must be non-decreasing in frequency.
	cfg := randomConfig(rng)
	cnt := randomCounts(rng)
	cycles := float64(1000 + rng.Intn(1_000_000))
	prev := -1.0
	prevMHz := 0.0
	for k := 0; k < config.Cardinality(config.Clock); k++ {
		cfg[config.Clock] = k
		t := cycles / cfg.ClockHz()
		p := power.Energy(corpusChip, cfg, cnt, t) / t
		if p < prev*(1-1e-12) {
			return fmt.Errorf("config %v: power %vW at %vMHz < %vW at %vMHz", cfg, p, cfg.ClockMHz(), prev, prevMHz)
		}
		prev, prevMHz = p, cfg.ClockMHz()
	}
	return nil
}

// randomCounts draws a plausible random epoch event total.
func randomCounts(rng *rand.Rand) power.Counts {
	return power.Counts{
		GPEInstrs:      rng.Intn(1_000_000),
		LCPInstrs:      rng.Intn(100_000),
		L1Accesses:     rng.Intn(500_000),
		SPMAccesses:    rng.Intn(500_000),
		L2Accesses:     rng.Intn(200_000),
		XbarTransfers:  rng.Intn(200_000),
		XbarConts:      rng.Intn(50_000),
		DRAMReadBytes:  rng.Intn(1_000_000),
		DRAMWriteBytes: rng.Intn(1_000_000),
	}
}

func checkEnergyMonotoneCounts(rng *rand.Rand) error {
	cfg := randomConfig(rng)
	cnt := randomCounts(rng)
	t := 1e-6 + rng.Float64()*1e-2
	base := power.Energy(corpusChip, cfg, cnt, t)
	if base < 0 {
		return fmt.Errorf("config %v: negative energy %v", cfg, base)
	}
	bump := 1 + rng.Intn(10_000)
	fields := []struct {
		name   string
		bumped power.Counts
	}{
		{"GPEInstrs", addCounts(cnt, power.Counts{GPEInstrs: bump})},
		{"LCPInstrs", addCounts(cnt, power.Counts{LCPInstrs: bump})},
		{"L1Accesses", addCounts(cnt, power.Counts{L1Accesses: bump})},
		{"SPMAccesses", addCounts(cnt, power.Counts{SPMAccesses: bump})},
		{"L2Accesses", addCounts(cnt, power.Counts{L2Accesses: bump})},
		{"XbarTransfers", addCounts(cnt, power.Counts{XbarTransfers: bump})},
		{"XbarConts", addCounts(cnt, power.Counts{XbarConts: bump})},
		{"DRAMReadBytes", addCounts(cnt, power.Counts{DRAMReadBytes: bump})},
		{"DRAMWriteBytes", addCounts(cnt, power.Counts{DRAMWriteBytes: bump})},
	}
	for _, f := range fields {
		if e := power.Energy(corpusChip, cfg, f.bumped, t); e < base {
			return fmt.Errorf("config %v: energy fell from %v to %v when %s grew by %d", cfg, base, e, f.name, bump)
		}
	}
	if e := power.Energy(corpusChip, cfg, cnt, t*2); e < base {
		return fmt.Errorf("config %v: energy fell from %v to %v when time doubled (leakage must accrue)", cfg, base, e)
	}
	return nil
}

func checkMissMonotoneCapacity(rng *rand.Rand) error {
	n := 24 + rng.Intn(24)
	a := matrix.Uniform(rng, n, n, n*2+rng.Intn(n*2)).ToCSC()
	x := matrix.RandomVec(rng, n, 0.5)
	_, w, err := kernels.SpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
	if err != nil {
		return err
	}
	ep := w.Epochs(0.2)[0]
	prevMiss := 2.0
	prevKB := 0
	for k := 0; k < config.Cardinality(config.L1Cap); k++ {
		// Private caches, no prefetching: capacity is the only variable, so
		// the access stream per bank is identical across the sweep.
		cfg := config.Config{config.CacheMode, config.Private, config.Private, k, 2, 3, 0}
		m := sim.New(corpusChip, corpusBW, cfg)
		m.BindTrace(w.Trace)
		r := m.RunEpoch(ep)
		if mr := r.Counters.L1MissRate; mr > prevMiss+1e-12 {
			return fmt.Errorf("n=%d: L1 miss rate rose from %v at %dkB to %v at %dkB", n, prevMiss, prevKB, mr, cfg.L1CapKB())
		} else {
			prevMiss, prevKB = mr, cfg.L1CapKB()
		}
	}
	return nil
}

func checkReconfigConserved(rng *rand.Rand) error {
	n := 24 + rng.Intn(24)
	a := matrix.Uniform(rng, n, n, n*2+rng.Intn(n*2)).ToCSC()
	x := matrix.RandomVec(rng, n, 0.5)
	_, w, err := kernels.SpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
	if err != nil {
		return err
	}
	eps := w.Epochs(0.1)
	if len(eps) < 2 {
		return nil
	}
	clock := rng.Intn(config.Cardinality(config.Clock))
	capL1 := rng.Intn(config.Cardinality(config.L1Cap))
	capL2 := rng.Intn(config.Cardinality(config.L2Cap))
	// A→B flips both sharing modes (flushing both levels) and disables the
	// prefetcher (one super-fine change); capacities and clock are held so
	// the only state difference after the transition is the empty hierarchy.
	cfgA := config.Config{config.CacheMode, config.Shared, config.Shared, capL1, capL2, clock, 1}
	cfgB := config.Config{config.CacheMode, config.Private, config.Private, capL1, capL2, clock, 0}
	// Effectively infinite bandwidth keeps both runs compute-bound, so the
	// epoch time difference is exactly the pending cycles at the clock.
	const bw = 1e15
	m := sim.New(corpusChip, bw, cfgA)
	m.BindTrace(w.Trace)
	m.RunEpoch(eps[0])
	rc, err := m.Reconfigure(cfgB)
	if err != nil {
		return err
	}
	res2 := m.RunEpoch(eps[1])

	fresh := sim.New(corpusChip, bw, cfgB)
	fresh.BindTrace(w.Trace)
	res3 := fresh.RunEpoch(eps[1])

	gotCycles := (res2.Metrics.TimeSec - res3.Metrics.TimeSec) * cfgB.ClockHz()
	if diff := gotCycles - rc.Cycles; diff > 1e-6*(1+rc.Cycles) || diff < -1e-6*(1+rc.Cycles) {
		return fmt.Errorf("n=%d: epoch slowed by %v cycles, reconfiguration charged %v", n, gotCycles, rc.Cycles)
	}
	want := addCounts(res3.Counts, power.Counts{
		L1Accesses:     rc.L1Flushed,
		L2Accesses:     rc.L1Flushed + rc.L2Flushed,
		DRAMWriteBytes: rc.DRAMWrites,
	})
	if res2.Counts != want {
		return fmt.Errorf("n=%d: post-reconfig epoch counts %+v, want fresh-machine counts plus flush traffic %+v (rc %+v)", n, res2.Counts, want, rc)
	}
	return nil
}

// addCounts returns a+b without mutating either.
func addCounts(a, b power.Counts) power.Counts {
	a.Add(b)
	return a
}

func checkEpochsPartition(rng *rand.Rand) error {
	n := 8 + rng.Intn(48)
	a := matrix.Uniform(rng, n, n, 1+rng.Intn(n*3)).ToCSC()
	x := matrix.RandomVec(rng, n, 0.5)
	_, w, err := kernels.SpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
	if err != nil {
		return err
	}
	scale := []float64{0.02, 0.05, 0.1, 0.5}[rng.Intn(4)]
	eps := w.Epochs(scale)
	if len(eps) == 0 {
		return fmt.Errorf("n=%d scale=%v: no epochs for a non-empty trace", n, scale)
	}
	if eps[0].Start != 0 {
		return fmt.Errorf("n=%d scale=%v: first epoch starts at %d", n, scale, eps[0].Start)
	}
	nev := len(w.Trace.Events)
	if last := eps[len(eps)-1].End; last != nev {
		return fmt.Errorf("n=%d scale=%v: last epoch ends at %d of %d events", n, scale, last, nev)
	}
	total := 0
	for i, ep := range eps {
		if ep.End <= ep.Start {
			return fmt.Errorf("n=%d scale=%v: epoch %d is empty [%d,%d)", n, scale, i, ep.Start, ep.End)
		}
		if i > 0 && ep.Start != eps[i-1].End {
			return fmt.Errorf("n=%d scale=%v: epoch %d starts at %d, previous ended at %d", n, scale, i, ep.Start, eps[i-1].End)
		}
		total += ep.FPOps
	}
	if ref := traceFPOps(w); total != ref {
		return fmt.Errorf("n=%d scale=%v: epochs carry %d FP-ops, trace has %d", n, scale, total, ref)
	}
	return nil
}

func checkOracleEEBound(rng *rand.Rand) error {
	n := 16 + rng.Intn(16)
	a := matrix.Uniform(rng, n, n, n+rng.Intn(n*2)).ToCSC()
	x := matrix.RandomVec(rng, n, 0.5)
	_, w, err := kernels.SpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
	if err != nil {
		return err
	}
	cfgs := oracle.SampleConfigs(rng, 4, config.CacheMode)
	rec, err := oracle.Record(corpusChip, corpusBW, w, 0.1, cfgs)
	if err != nil {
		return err
	}
	staticCfg, staticTot := rec.IdealStatic(power.EnergyEfficient)
	_, oracleTot := rec.Oracle(power.EnergyEfficient)
	// Every static sequence is a path in the oracle's DAG, so the exact
	// energy-minimizing DP can never do worse than the best static.
	if oracleTot.EnergyJ > staticTot.EnergyJ*(1+1e-9) {
		return fmt.Errorf("n=%d: Oracle(EE) energy %v exceeds Ideal Static's %v", n, oracleTot.EnergyJ, staticTot.EnergyJ)
	}
	// Pricing the constant sequence must reproduce the static total exactly
	// (no phantom transition costs).
	si := -1
	for i, c := range rec.Configs {
		if c == staticCfg {
			si = i
		}
	}
	if si < 0 {
		return fmt.Errorf("n=%d: IdealStatic config %v not in the recording's set", n, staticCfg)
	}
	seq := make([]int, len(rec.Epochs))
	for i := range seq {
		seq[i] = si
	}
	got := rec.SequenceMetrics(seq)
	if !closeRel(got.TimeSec, staticTot.TimeSec) || !closeRel(got.EnergyJ, staticTot.EnergyJ) || !closeRel(got.FPOps, staticTot.FPOps) {
		return fmt.Errorf("n=%d: constant sequence prices as %+v, Ideal Static total is %+v", n, got, staticTot)
	}
	return nil
}

// traceArithFP counts the KFP ALU events of a trace — the dataflow
// invariant: every SpMSpM variant performs the same multiplies and
// accumulations, so the arithmetic FLOP total is exactly equal across
// variants even though load/store mixes (and thus total FP-ops) differ.
func traceArithFP(w kernels.Workload) int {
	tot := 0
	for _, e := range w.Trace.Events {
		if e.Kind == sim.KFP {
			tot++
		}
	}
	return tot
}

func checkDataflowEquivalence(rng *rand.Rand) error {
	n := 8 + rng.Intn(24)
	a := matrix.Uniform(rng, n, n, 1+rng.Intn(n*3))
	b := matrix.Uniform(rng, n, n, 1+rng.Intn(n*3))
	ref := RefSpMSpM(a.ToCSC(), b.ToCSR())
	arith := -1
	arithDF := -1
	for df := 0; df < len(config.DataflowNames()); df++ {
		// Each variant also draws a random format and scheduling policy, so
		// the three axes are exercised jointly: none of them may change the
		// numeric result or the arithmetic work.
		key := kernels.AlgoKey{
			Dataflow: df,
			Format:   rng.Intn(len(config.FormatNames())),
			Sched:    rng.Intn(len(config.SchedNames())),
		}
		c, w, err := kernels.SpMSpMVariant(a.ToCSC(), b.ToCSR(), corpusChip.NGPE(), corpusChip.Tiles, key)
		if err != nil {
			return fmt.Errorf("n=%d variant %v: %w", n, key, err)
		}
		got := c.Dense()
		for i := range ref {
			for j := range ref[i] {
				if !closeRel(ref[i][j], got[i][j]) {
					return fmt.Errorf("n=%d variant %v: C[%d][%d]=%v, dense reference %v", n, key, i, j, got[i][j], ref[i][j])
				}
			}
		}
		if fp := traceArithFP(w); arith < 0 {
			arith, arithDF = fp, df
		} else if fp != arith {
			return fmt.Errorf("n=%d: arithmetic FLOPs differ across dataflows: %s=%d, %s=%d",
				n, config.DataflowNames()[arithDF], arith, config.DataflowNames()[df], fp)
		}
	}
	return nil
}

func checkFormatRoundtrip(rng *rand.Rand) error {
	n := 4 + rng.Intn(40)
	m := 4 + rng.Intn(40)
	nnz := rng.Intn(n*m/2 + 1)
	csr := matrix.Uniform(rng, n, m, nnz).ToCSR()
	csc := csr.ToCSC()
	if err := csr.Validate(); err != nil {
		return fmt.Errorf("%dx%d nnz=%d: source CSR invalid: %w", n, m, csr.NNZ(), err)
	}
	if err := csc.Validate(); err != nil {
		return fmt.Errorf("%dx%d nnz=%d: CSR->CSC produced invalid CSC: %w", n, m, csr.NNZ(), err)
	}
	// Direct converters permute entries without re-summing, so the
	// round trips are bit-exact, not merely within tolerance.
	if got := csc.ToCSR(); !csr.Equal(got, 0) {
		return fmt.Errorf("%dx%d nnz=%d: CSR->CSC->CSR changed the matrix", n, m, csr.NNZ())
	}
	if got := csr.ToCOO().ToCSR(); !csr.Equal(got, 0) {
		return fmt.Errorf("%dx%d nnz=%d: CSR->COO->CSR changed the matrix", n, m, csr.NNZ())
	}
	if got := csc.ToCOO().ToCSR().ToCSC().ToCSR(); !csr.Equal(got, 0) {
		return fmt.Errorf("%dx%d nnz=%d: CSC->COO->CSR->CSC->CSR changed the matrix", n, m, csr.NNZ())
	}
	return nil
}

func checkConversionCostConserved(rng *rand.Rand) error {
	n := 24 + rng.Intn(24)
	a := matrix.Uniform(rng, n, n, n*2+rng.Intn(n*2)).ToCSC()
	x := matrix.RandomVec(rng, n, 0.5)
	_, w, err := kernels.SpMSpV(a, x, corpusChip.NGPE(), corpusChip.Tiles)
	if err != nil {
		return err
	}
	eps := w.Epochs(0.1)
	if len(eps) < 2 {
		return nil
	}
	clock := rng.Intn(config.Cardinality(config.Clock))
	capL1 := rng.Intn(config.Cardinality(config.L1Cap))
	capL2 := rng.Intn(config.Cardinality(config.L2Cap))
	from := rng.Intn(len(config.FormatNames()))
	to := rng.Intn(len(config.FormatNames()) - 1)
	if to >= from {
		to++
	}
	// A→B changes only the storage format: an algorithmic transition that
	// flushes both levels and charges the per-nonzero conversion cost.
	cfgA := config.Config{config.CacheMode, config.Shared, config.Shared, capL1, capL2, clock, 1, config.DFOuter, from, config.SchedRR}
	cfgB := config.Config{config.CacheMode, config.Shared, config.Shared, capL1, capL2, clock, 1, config.DFOuter, to, config.SchedRR}
	const bw = 1e15
	m := sim.New(corpusChip, bw, cfgA)
	m.BindTrace(w.Trace)
	m.RunEpoch(eps[0])
	rc, err := m.Reconfigure(cfgB)
	if err != nil {
		return err
	}
	// The charged conversion cycles must be exactly the cost model's: one
	// algorithmic swap charge plus the per-nonzero format conversion.
	wantConv := config.AlgoSwapCycles + config.ConversionCyclesPerNNZ(from, to)*float64(w.Trace.NNZ)
	if rc.ConvCycles != wantConv {
		return fmt.Errorf("n=%d %s->%s nnz=%d: conversion charged %v cycles, cost model says %v",
			n, config.FormatNames()[from], config.FormatNames()[to], w.Trace.NNZ, rc.ConvCycles, wantConv)
	}
	res2 := m.RunEpoch(eps[1])

	fresh := sim.New(corpusChip, bw, cfgB)
	fresh.BindTrace(w.Trace)
	res3 := fresh.RunEpoch(eps[1])

	// At effectively infinite bandwidth both runs are compute-bound, so the
	// epoch slowdown is exactly the pending reconfiguration cycles —
	// conversion included — at cfgB's clock.
	gotCycles := (res2.Metrics.TimeSec - res3.Metrics.TimeSec) * cfgB.ClockHz()
	if diff := gotCycles - rc.Cycles; diff > 1e-6*(1+rc.Cycles) || diff < -1e-6*(1+rc.Cycles) {
		return fmt.Errorf("n=%d %s->%s: epoch slowed by %v cycles, reconfiguration charged %v (conversion %v)",
			n, config.FormatNames()[from], config.FormatNames()[to], gotCycles, rc.Cycles, rc.ConvCycles)
	}
	want := addCounts(res3.Counts, power.Counts{
		L1Accesses:     rc.L1Flushed,
		L2Accesses:     rc.L1Flushed + rc.L2Flushed,
		DRAMWriteBytes: rc.DRAMWrites,
	})
	if res2.Counts != want {
		return fmt.Errorf("n=%d %s->%s: post-switch epoch counts %+v, want fresh-machine counts plus flush traffic %+v (rc %+v)",
			n, config.FormatNames()[from], config.FormatNames()[to], res2.Counts, want, rc)
	}
	return nil
}

func checkHistoryPadding(rng *rand.Rand) error {
	cfg := randomConfig(rng)
	h := 1 + rng.Intn(4)
	window := make([]sim.Counters, 1+rng.Intn(h))
	for i := range window {
		f := make([]float64, sim.NumFeatures)
		for j := range f {
			f[j] = rng.Float64()
		}
		window[i] = sim.CountersFromFeatures(f)
	}
	x := core.BuildHistoryFeatures(cfg, window, h)
	if len(x) != core.HistoryFeatureCount(h) {
		return fmt.Errorf("h=%d window=%d: width %d, want %d", h, len(window), len(x), core.HistoryFeatureCount(h))
	}
	// Short windows pad by repeating the oldest frame: the padded vector
	// must equal the one built from an explicitly front-filled window.
	full := make([]sim.Counters, 0, h)
	for i := 0; i < h-len(window); i++ {
		full = append(full, window[0])
	}
	full = append(full, window...)
	want := core.BuildHistoryFeatures(cfg, full, h)
	for i := range x {
		if x[i] != want[i] {
			return fmt.Errorf("h=%d window=%d: padded vector diverges at %d: %v vs %v", h, len(window), i, x[i], want[i])
		}
	}
	// The empty window must be a sanitized neutral frame, never raw zeros:
	// a zero clock or zero capacity is impossible telemetry.
	empty := core.BuildHistoryFeatures(cfg, nil, h)
	if len(empty) != core.HistoryFeatureCount(h) {
		return fmt.Errorf("h=%d: empty-window width %d, want %d", h, len(empty), core.HistoryFeatureCount(h))
	}
	zeros := true
	for _, v := range empty[core.ConfigFeatureCount:] {
		if v != 0 {
			zeros = false
		}
	}
	if zeros {
		return fmt.Errorf("h=%d: empty window produced an all-zero telemetry frame", h)
	}
	return nil
}
