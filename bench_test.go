// Package sparseadapt_test is the benchmark harness of the reproduction:
// one testing.B benchmark per paper table/figure (Section 6). Each
// benchmark regenerates the corresponding report at the test scale and
// publishes the headline number (usually the geometric-mean SparseAdapt
// gain over Baseline) as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. Larger scales are available through the CLI
// (`sparseadapt exp <id> -scale small|paper`).
package sparseadapt_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/experiments"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/oracle"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

// run executes the experiment once per benchmark iteration and reports
// headline metrics extracted from the named columns of its GM (or last)
// row.
func run(b *testing.B, id string, metricCols map[string]string) {
	b.Helper()
	sc := experiments.TestScale()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		last := rep.Rows[len(rep.Rows)-1]
		for col, metric := range metricCols {
			for j, c := range rep.Columns {
				if c == col && j < len(last.Values) {
					b.ReportMetric(last.Values[j], metric)
				}
			}
		}
	}
}

// BenchmarkFigure1 regenerates the motivation timeline: dynamic vs best
// static on the dense-strip OP-SpMSpM (paper: 22.6% faster, 1.5x energy).
func BenchmarkFigure1(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("fig1")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				switch row.Label {
				case "speedup-vs-static":
					b.ReportMetric(row.Values[0], "speedup-x")
				case "energy-gain-vs-static":
					b.ReportMetric(row.Values[0], "energy-gain-x")
				}
			}
		}
	}
}

// BenchmarkFigure5 regenerates the SpMSpV synthetic-dataset comparison.
func BenchmarkFigure5(b *testing.B) {
	run(b, "fig5", map[string]string{
		"pp-gflops-sa": "gm-pp-gflops-x",
		"pp-eff-sa":    "gm-pp-eff-x",
		"ee-eff-sa":    "gm-ee-eff-x",
	})
}

// BenchmarkFigure6 regenerates the SpMSpM real-world comparison (paper:
// Max Cfg performance at 5.3x better efficiency; 1.8x over Baseline in
// Energy-Efficient mode).
func BenchmarkFigure6(b *testing.B) {
	run(b, "fig6", map[string]string{
		"pp-gflops-sa": "gm-pp-gflops-x",
		"pp-eff-sa":    "gm-pp-eff-x",
		"ee-eff-sa":    "gm-ee-eff-x",
	})
}

// BenchmarkFigure7 regenerates the SpMSpV real-world comparison for both
// L1 modes in Power-Performance mode.
func BenchmarkFigure7(b *testing.B) {
	run(b, "fig7", map[string]string{
		"cache-gflops-sa": "gm-cache-gflops-x",
		"spm-gflops-sa":   "gm-spm-gflops-x",
	})
}

// BenchmarkTable6 regenerates the graph-algorithm TEPS/W table (paper GM:
// BFS 1.31x, SSSP 1.29x over Baseline).
func BenchmarkTable6(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("tab6")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				switch row.Label {
				case "bfs/GM":
					b.ReportMetric(row.Values[1], "gm-bfs-x")
				case "sssp/GM":
					b.ReportMetric(row.Values[1], "gm-sssp-x")
				}
			}
		}
	}
}

// BenchmarkFigure8 regenerates the upper-bound study (paper: SparseAdapt
// within 13% of Oracle performance, 5% of its efficiency).
func BenchmarkFigure8(b *testing.B) {
	run(b, "fig8", map[string]string{
		"pp-eff-oracle": "gm-pp-eff-oracle-x",
		"pp-eff-sa":     "gm-pp-eff-sa-x",
		"ee-eff-oracle": "gm-ee-eff-oracle-x",
		"ee-eff-sa":     "gm-ee-eff-sa-x",
	})
}

// BenchmarkFigure9 regenerates the model-complexity sweep.
func BenchmarkFigure9(b *testing.B) {
	run(b, "fig9", nil)
}

// BenchmarkFigure10 regenerates the feature-importance analysis.
func BenchmarkFigure10(b *testing.B) {
	run(b, "fig10", nil)
}

// BenchmarkFigure11Policies regenerates the cost-aware policy sweep.
func BenchmarkFigure11Policies(b *testing.B) {
	run(b, "fig11L", nil)
}

// BenchmarkFigure11Bandwidth regenerates the memory-bandwidth sweep
// (paper: >3x gains when memory-bound).
func BenchmarkFigure11Bandwidth(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("fig11R")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rep.Rows) > 0 {
			b.ReportMetric(rep.Rows[0].Values[0], "lowbw-gain-x")
			b.ReportMetric(rep.Rows[len(rep.Rows)-1].Values[0], "highbw-gain-x")
		}
	}
}

// BenchmarkFigure12 regenerates the system-size scaling study (paper:
// 1.7-2.0x mean gains without retraining).
func BenchmarkFigure12(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("fig12")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Values[len(row.Values)-1], row.Label+"-gm-x")
			}
		}
	}
}

// BenchmarkProfileAdapt regenerates the Section 6.4 comparison (paper: up
// to 2.9x efficiency over the naive scheme).
func BenchmarkProfileAdapt(b *testing.B) {
	run(b, "sec64", map[string]string{
		"pp-eff-vs-naive": "gm-pp-eff-vs-naive-x",
		"ee-eff-vs-naive": "gm-ee-eff-vs-naive-x",
		"ee-eff-vs-ideal": "gm-ee-eff-vs-ideal-x",
	})
}

// BenchmarkDiscussion7 regenerates the regular-kernel ablation of the
// Discussion (paper: <5% Oracle headroom over Ideal Static for GeMM/Conv,
// i.e. dynamic control is overkill for regular workloads).
func BenchmarkDiscussion7(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("disc7")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				// Column 5 is the Power-Performance-mode Oracle/Ideal-Static
				// headroom, the discriminating quantity of the claim.
				b.ReportMetric(row.Values[5], row.Label+"-headroom-x")
			}
		}
	}
}

// BenchmarkAlgoSelection regenerates the host dispatch crossover between
// the outer- and inner-product SpMSpM formulations (Section 5.4).
func BenchmarkAlgoSelection(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("algo")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Values[2], row.Label+"-inner/outer-x")
			}
		}
	}
}

// BenchmarkPhaseDetection regenerates the motivation-section analysis:
// SimPoint-style detectors find explicit phases but miss the implicit
// adaptation opportunities the Oracle exploits.
func BenchmarkPhaseDetection(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("phasedet")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Values[2], row.Label+"-recall")
				b.ReportMetric(row.Values[5], row.Label+"-missed")
			}
		}
	}
}

// BenchmarkModelChoice regenerates the Section 4.3 model-family study
// (paper: trees ≈ forests, regressions clearly worse).
func BenchmarkModelChoice(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("models")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the mean tree-vs-linear accuracy gap across parameters.
			tree, lin := 0.0, 0.0
			for _, row := range rep.Rows {
				tree += row.Values[0]
				lin += row.Values[2]
			}
			n := float64(len(rep.Rows))
			b.ReportMetric(tree/n, "tree-cv-acc")
			b.ReportMetric(lin/n, "linear-cv-acc")
		}
	}
}

// --- engine benchmarks -------------------------------------------------
//
// The benchmarks below measure the parallel execution engine itself on a
// fixed oracle-recording batch: the same simulation grid the upper-bound
// study replays, which is the dominant cost of every experiment. Compare
// BenchmarkEngineOracleRecord/workers=1 against workers=4 for the
// parallel speedup, and EngineCacheCold against EngineCacheWarm for the
// content-addressed cache win.

var benchWorkload struct {
	once sync.Once
	chip power.Chip
	w    kernels.Workload
	cfgs []config.Config
}

func engineBenchSetup(b *testing.B) (power.Chip, kernels.Workload, []config.Config) {
	b.Helper()
	benchWorkload.once.Do(func() {
		benchWorkload.chip = power.Chip{Tiles: 2, GPEsPerTile: 8}
		rng := rand.New(rand.NewSource(1))
		am := matrix.Uniform(rng, 128, 128, 1600)
		_, w, err := kernels.SpMSpM(am.ToCSC(), am.ToCSR(),
			benchWorkload.chip.NGPE(), benchWorkload.chip.Tiles)
		if err != nil {
			b.Fatal(err)
		}
		benchWorkload.w = w
		benchWorkload.cfgs = oracle.SampleConfigs(rng, 24, config.CacheMode)
	})
	return benchWorkload.chip, benchWorkload.w, benchWorkload.cfgs
}

// BenchmarkEngineOracleRecord records the oracle grid at 1, 2, 4 and 8
// workers without a cache, exposing the raw pool speedup.
func BenchmarkEngineOracleRecord(b *testing.B) {
	chip, w, cfgs := engineBenchSetup(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(engine.Options{Workers: workers})
				if _, err := oracle.RecordEngine(context.Background(), eng,
					chip, sim.DefaultBandwidth, w, 0.05, cfgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCacheCold records against a fresh cache every iteration:
// every row is a miss and must be simulated.
func BenchmarkEngineCacheCold(b *testing.B) {
	chip, w, cfgs := engineBenchSetup(b)
	for i := 0; i < b.N; i++ {
		cache, err := engine.NewCache(4096, "")
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New(engine.Options{Workers: 4, Cache: cache})
		if _, err := oracle.RecordEngine(context.Background(), eng,
			chip, sim.DefaultBandwidth, w, 0.05, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCacheWarm records against a pre-populated cache: every
// row should be served content-addressed with near-zero recompute.
func BenchmarkEngineCacheWarm(b *testing.B) {
	chip, w, cfgs := engineBenchSetup(b)
	cache, err := engine.NewCache(4096, "")
	if err != nil {
		b.Fatal(err)
	}
	warm := engine.New(engine.Options{Workers: 4, Cache: cache})
	if _, err := oracle.RecordEngine(context.Background(), warm,
		chip, sim.DefaultBandwidth, w, 0.05, cfgs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{Workers: 4, Cache: cache})
		if _, err := oracle.RecordEngine(context.Background(), eng,
			chip, sim.DefaultBandwidth, w, 0.05, cfgs); err != nil {
			b.Fatal(err)
		}
	}
	if b.N > 0 {
		hits, misses, _ := cache.Counts()
		b.ReportMetric(float64(hits)/float64(hits+misses)*100, "hit-%")
	}
}

// BenchmarkHistoryExtension regenerates the Section 7 history-window
// ablation (H = 1 is the published design).
func BenchmarkHistoryExtension(b *testing.B) {
	sc := experiments.TestScale()
	e, _ := experiments.Get("hist")
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.Values[0], row.Label+"-ee-eff-x")
			}
		}
	}
}
