package sparseadapt_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment walks every Go package in the repository
// (internal/, cmd/, examples/ and the root) and fails if any lacks a
// package doc comment on at least one of its files. CI runs this as part
// of the docs-health step, so new packages cannot land undocumented.
func TestEveryPackageHasDocComment(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// dir -> true once a package comment is seen on any file in the dir.
	documented := map[string]bool{}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			if name == "testdata" || name == "obs-out" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if _, seen := documented[dir]; !seen {
			documented[dir] = false
			dirs = append(dirs, dir)
		}
		if documented[dir] {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			t.Errorf("parse %s: %v", path, perr)
			return nil
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if !documented[dir] {
			rel, _ := filepath.Rel(root, dir)
			t.Errorf("package in %s has no package doc comment on any file", rel)
		}
	}
}
