// Command traingen generates SparseAdapt training datasets (Table 3
// parameter sweeps) and writes them as JSON and/or CSV, mirroring the
// paper artifact's dataset-construction step. It is a focused companion to
// `sparseadapt train` for users who want the raw examples.
//
// Usage:
//
//	traingen -kernel spmspv -l1 cache -mode ee -scale 0.3 -json ds.json -csv ds.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/flagcheck"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
	"sparseadapt/internal/trainer"
)

func main() {
	kernel := flag.String("kernel", "spmspv", "kernel: spmspm|spmspv")
	l1 := flag.String("l1", "cache", "L1 type: cache|spm")
	modeName := flag.String("mode", "ee", "optimization mode: ee|pp")
	dataflow := flag.String("dataflow", "", "pin the SpMSpM dataflow axis: outer|inner|row (empty = search the full space)")
	format := flag.String("format", "", "pin the A-operand storage format: csr|csc|coo (empty = search the full space)")
	scale := flag.Float64("scale", 0.3, "sweep scale (1 = Table 3)")
	jsonOut := flag.String("json", "", "JSON output path")
	csvOut := flag.String("csv", "dataset.csv", "CSV output path")
	seed := flag.Int64("seed", 1, "deterministic seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = all CPUs, 1 = serial)")
	cacheDir := flag.String("cache", "", "directory for the on-disk simulation result cache")
	progress := flag.Bool("progress", false, "print engine progress and the end-of-run summary")
	metricsPath := flag.String("metrics", "", "write run metrics to this file (.json = JSON snapshot, else Prometheus text)")
	tracePath := flag.String("trace", "", "write the engine task trace to this file (.jsonl = JSONL, else Chrome trace_event JSON)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address while generating")
	manifestPath := flag.String("manifest", "", "write a reproducibility manifest (JSON)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.Version("traingen"))
		return
	}
	var check flagcheck.Check
	check.PositiveFloat("scale", *scale)
	check.NonNegative("workers", *workers)
	if *dataflow != "" {
		check.OneOf("dataflow", *dataflow, config.DataflowNames()...)
	}
	if *format != "" {
		check.OneOf("format", *format, config.FormatNames()...)
	}
	if err := check.Err(); err != nil {
		fatalUsage(err)
	}

	var reg *obs.Registry
	var trace *obs.TraceRecorder
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}
	if *tracePath != "" {
		trace = obs.NewTraceRecorder()
	}
	if *pprofAddr != "" {
		srv, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", srv.Addr())
	}
	manifest := (*obs.Manifest)(nil)
	if *manifestPath != "" {
		manifest = obs.NewManifest("traingen", os.Args[1:])
	}

	mode := power.EnergyEfficient
	if *modeName == "pp" || *modeName == "power-performance" {
		mode = power.PowerPerformance
	} else if *modeName != "ee" && *modeName != "energy-efficient" {
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}
	l1Type := config.CacheMode
	if *l1 == "spm" {
		l1Type = config.SPMMode
	} else if *l1 != "cache" {
		fatal(fmt.Errorf("unknown L1 type %q", *l1))
	}

	cache, err := engine.NewCache(4096, *cacheDir)
	if err != nil {
		fatal(err)
	}
	opts := engine.Options{Workers: *workers, Cache: cache, Metrics: reg, Trace: trace}
	if *progress {
		opts.Progress = os.Stderr
	}
	eng := engine.New(opts)

	sw := trainer.DefaultSweep(*kernel, l1Type, *scale)
	sw.Seed = *seed
	sw.PinDataflow = *dataflow
	sw.PinFormat = *format
	fmt.Printf("sweep: dims=%v densities=%v bandwidths=%v GB/s K=%d workers=%d\n",
		sw.Dims, sw.Densities, sw.BandwidthsGBps, sw.K, eng.Workers())
	ds, err := trainer.GenerateEngine(context.Background(), eng, sw, mode, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d examples\n", len(ds.Examples))
	if *progress {
		fmt.Fprint(os.Stderr, eng.Stats.Report())
	}
	if *jsonOut != "" {
		if err := trainer.SaveDataset(*jsonOut, ds); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *jsonOut)
	}
	if *csvOut != "" {
		if err := trainer.WriteCSV(*csvOut, ds); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *csvOut)
	}
	if reg != nil {
		if err := reg.WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *metricsPath)
	}
	if trace != nil {
		if err := trace.WriteFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *tracePath)
	}
	if manifest != nil {
		manifest.Seed = *seed
		manifest.Scale = fmt.Sprintf("sweep=%g", *scale)
		if err := manifest.WriteFile(*manifestPath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *manifestPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// fatalUsage reports flag violations — all of them, joined — and exits
// with the usage code, matching sparseadaptd's flag contract.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(2)
}
