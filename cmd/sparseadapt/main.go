// Command sparseadapt is the main CLI of the reproduction: it lists and
// runs the paper's experiments, trains and saves predictive models, runs
// individual workloads under SparseAdapt control, submits jobs to a
// sparseadaptd server, and prints the dataset inventory. See internal/cli
// for the implementation.
package main

import (
	"context"
	"os"

	"sparseadapt/internal/cli"
	"sparseadapt/internal/sigctx"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: simulations stop at the next
	// epoch or task boundary and the CLI flushes any -metrics/-trace/
	// -manifest sinks before exiting. A second signal force-exits.
	ctx, stop := sigctx.WithSignals(context.Background(), os.Stderr)
	defer stop()
	os.Exit(cli.MainContext(ctx, os.Args[1:], os.Stdout))
}
