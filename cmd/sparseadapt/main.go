// Command sparseadapt is the main CLI of the reproduction: it lists and
// runs the paper's experiments, trains and saves predictive models, runs
// individual workloads under SparseAdapt control, and prints the dataset
// inventory. See internal/cli for the implementation.
package main

import (
	"os"

	"sparseadapt/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout))
}
