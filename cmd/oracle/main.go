// Command oracle runs the upper-bound study for one workload: it records
// the workload under a random configuration sample and prints Ideal
// Static, Ideal Greedy, Oracle, ProfileAdapt (naïve and ideal) and the
// Baseline, in both optimization modes (Sections 6.2 and 6.4).
//
// Usage:
//
//	oracle -kernel spmspm -matrix R04 -samples 32 -scale small
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sparseadapt/internal/config"
	"sparseadapt/internal/engine"
	"sparseadapt/internal/experiments"
	"sparseadapt/internal/flagcheck"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/oracle"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
)

func main() {
	kernel := flag.String("kernel", "spmspm", "kernel: spmspm|spmspv")
	matID := flag.String("matrix", "R04", "dataset matrix ID")
	samples := flag.Int("samples", 32, "number of sampled configurations (paper: 256)")
	dataflow := flag.String("dataflow", "", "pin the SpMSpM dataflow axis of every sampled config: outer|inner|row (empty = roam)")
	format := flag.String("format", "", "pin the A-operand storage format of every sampled config: csr|csc|coo (empty = roam)")
	scaleName := flag.String("scale", "small", "scale: test|small|paper")
	seed := flag.Int64("seed", 42, "deterministic seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = all CPUs, 1 = serial)")
	cacheDir := flag.String("cache", "", "directory for the on-disk simulation result cache")
	progress := flag.Bool("progress", false, "print engine progress and the end-of-run summary")
	metricsPath := flag.String("metrics", "", "write run metrics to this file (.json = JSON snapshot, else Prometheus text)")
	tracePath := flag.String("trace", "", "write the engine task trace to this file (.jsonl = JSONL, else Chrome trace_event JSON)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address while recording")
	manifestPath := flag.String("manifest", "", "write a reproducibility manifest (JSON)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.Version("oracle"))
		return
	}
	var check flagcheck.Check
	check.Positive("samples", *samples)
	check.NonNegative("workers", *workers)
	if *dataflow != "" {
		check.OneOf("dataflow", *dataflow, config.DataflowNames()...)
	}
	if *format != "" {
		check.OneOf("format", *format, config.FormatNames()...)
	}
	if err := check.Err(); err != nil {
		fatalUsage(err)
	}

	var reg *obs.Registry
	var trace *obs.TraceRecorder
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}
	if *tracePath != "" {
		trace = obs.NewTraceRecorder()
	}
	if *pprofAddr != "" {
		srv, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", srv.Addr())
	}
	manifest := (*obs.Manifest)(nil)
	if *manifestPath != "" {
		manifest = obs.NewManifest("oracle", os.Args[1:])
	}

	var sc experiments.Scale
	switch *scaleName {
	case "test":
		sc = experiments.TestScale()
	case "small":
		sc = experiments.SmallScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	sc.Seed = *seed

	entry, err := matrix.Entry(*matID)
	if err != nil {
		fatal(err)
	}
	am := entry.Generate(sc.Matrix, sc.Seed)
	a := am.ToCSC()
	var src *kernels.Source
	switch *kernel {
	case "spmspm":
		src = kernels.NewSpMSpMSource(*matID, a, am.ToCSR().Transpose(), sc.Chip.NGPE(), sc.Chip.Tiles)
	case "spmspv":
		x := matrix.RandomVec(rand.New(rand.NewSource(sc.Seed+1)), a.Cols, 0.5)
		src = kernels.NewSpMSpVSource(*matID, a, x, sc.Chip.NGPE(), sc.Chip.Tiles)
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}
	nEpochs, _, err := src.GridEpochs(sc.Epoch)
	if err != nil {
		fatal(err)
	}

	cache, err := engine.NewCache(4096, *cacheDir)
	if err != nil {
		fatal(err)
	}
	opts := engine.Options{Workers: *workers, Cache: cache, Metrics: reg, Trace: trace}
	if *progress {
		opts.Progress = os.Stderr
	}
	eng := engine.New(opts)

	rng := rand.New(rand.NewSource(sc.Seed + 7))
	cfgs := oracle.SampleConfigs(rng, *samples, config.CacheMode)
	cfgs = pinConfigs(cfgs, *dataflow, *format)
	fmt.Printf("recording %s on %s: %d configs x %d epochs, %d workers\n",
		*kernel, *matID, len(cfgs), nEpochs, eng.Workers())
	rec, err := oracle.RecordSourceEngine(context.Background(), eng, sim.SharedRunMemo(), sc.Chip, sc.BW, src, sc.Epoch, cfgs)
	if err != nil {
		fatal(err)
	}
	if *progress {
		fmt.Fprint(os.Stderr, eng.Stats.Report())
	}

	for _, mode := range []power.Mode{power.PowerPerformance, power.EnergyEfficient} {
		fmt.Printf("\n--- mode: %s ---\n", mode)
		stCfg, st := rec.IdealStatic(mode)
		_, gr := rec.IdealGreedy(mode)
		_, or := rec.Oracle(mode)
		paN := rec.ProfileAdapt(mode, true)
		paI := rec.ProfileAdapt(mode, false)
		fmt.Printf("%-18s %12s %12s %12s %14s\n", "scheme", "time(ms)", "energy(mJ)", "GFLOPS", "GFLOPS/W")
		show := func(name string, m power.Metrics) {
			fmt.Printf("%-18s %12.3f %12.3f %12.4f %14.4f\n",
				name, m.TimeSec*1e3, m.EnergyJ*1e3, m.GFLOPS(), m.GFLOPSPerW())
		}
		show("ideal-static", st)
		show("ideal-greedy", gr)
		show("oracle", or)
		show("profileadapt-naive", paN)
		show("profileadapt-ideal", paI)
		fmt.Printf("ideal static config: %v\n", stCfg)
	}

	if reg != nil {
		if err := reg.WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *metricsPath)
	}
	if trace != nil {
		if err := trace.WriteFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *tracePath)
	}
	if manifest != nil {
		manifest.Seed = sc.Seed
		manifest.Scale = *scaleName
		if err := manifest.WriteFile(*manifestPath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *manifestPath)
	}
}

// pinConfigs projects every sampled configuration onto the requested
// dataflow/format axes (empty = leave the axis free) and drops the
// duplicates the projection creates, preserving sample order.
func pinConfigs(cfgs []config.Config, dataflow, format string) []config.Config {
	if dataflow == "" && format == "" {
		return cfgs
	}
	df, fm := -1, -1
	if dataflow != "" {
		df, _ = config.DataflowByName(dataflow) // validated by flagcheck
	}
	if format != "" {
		fm, _ = config.FormatByName(format)
	}
	seen := map[int]bool{}
	out := cfgs[:0]
	for _, c := range cfgs {
		if df >= 0 {
			c[config.Dataflow] = df
		}
		if fm >= 0 {
			c[config.Format] = fm
		}
		if !seen[c.Index()] {
			out = append(out, c)
			seen[c.Index()] = true
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// fatalUsage reports flag violations — all of them, joined — and exits
// with the usage code, matching sparseadaptd's flag contract.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(2)
}
