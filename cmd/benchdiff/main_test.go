package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkFast-8        	 1000000	       100 ns/op	       0 B/op
BenchmarkSlow-16       	     100	     50000 ns/op
BenchmarkSlow-16       	     100	     48000 ns/op
ok  	example	1.2s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkFast"] != 100 {
		t.Errorf("BenchmarkFast = %v, want 100 (GOMAXPROCS suffix stripped)", got["BenchmarkFast"])
	}
	if got["BenchmarkSlow"] != 48000 {
		t.Errorf("BenchmarkSlow = %v, want min of repeated runs 48000", got["BenchmarkSlow"])
	}
}

func TestWriteThenCompare(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	in := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if code := run([]string{"-write", "-baseline", baseline, in}, &out); code != 0 {
		t.Fatalf("write failed (%d): %s", code, out.String())
	}

	// Identical input: clean comparison, exit 0.
	out.Reset()
	if code := run([]string{"-baseline", baseline, in}, &out); code != 0 {
		t.Fatalf("compare failed (%d): %s", code, out.String())
	}
	if strings.Contains(out.String(), "WARN") {
		t.Fatalf("identical run warned: %s", out.String())
	}

	// Regressed input: warn by default (exit 0), fail with -fail.
	slow := filepath.Join(dir, "slow.out")
	if err := os.WriteFile(slow, []byte(strings.ReplaceAll(sample, "       100 ns/op", "       200 ns/op")), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-baseline", baseline, slow}, &out); code != 0 {
		t.Fatalf("warn-only compare exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "WARN") {
		t.Fatalf("regression not flagged: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-fail", "-baseline", baseline, slow}, &out); code != 1 {
		t.Fatalf("-fail compare exited %d, want 1: %s", code, out.String())
	}
}
