package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkFast-8        	 1000000	       100 ns/op	       0 B/op	       5 allocs/op
BenchmarkSlow-16       	     100	     50000 ns/op
BenchmarkSlow-16       	     100	     48000 ns/op
ok  	example	1.2s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ns) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got.ns), got.ns)
	}
	if got.ns["BenchmarkFast"] != 100 {
		t.Errorf("BenchmarkFast = %v, want 100 (GOMAXPROCS suffix stripped)", got.ns["BenchmarkFast"])
	}
	if got.ns["BenchmarkSlow"] != 48000 {
		t.Errorf("BenchmarkSlow = %v, want min of repeated runs 48000", got.ns["BenchmarkSlow"])
	}
	if got.allocs["BenchmarkFast"] != 5 {
		t.Errorf("BenchmarkFast allocs = %v, want 5", got.allocs["BenchmarkFast"])
	}
	if got.procs != 16 {
		t.Errorf("procs = %d, want max suffix 16", got.procs)
	}
}

func TestWriteThenCompare(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	in := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if code := run([]string{"-write", "-baseline", baseline, in}, &out); code != 0 {
		t.Fatalf("write failed (%d): %s", code, out.String())
	}

	// Identical input: clean comparison, exit 0.
	out.Reset()
	if code := run([]string{"-baseline", baseline, in}, &out); code != 0 {
		t.Fatalf("compare failed (%d): %s", code, out.String())
	}
	if strings.Contains(out.String(), "WARN") {
		t.Fatalf("identical run warned: %s", out.String())
	}

	// Regressed input: warn by default (exit 0), fail with -fail.
	slow := filepath.Join(dir, "slow.out")
	if err := os.WriteFile(slow, []byte(strings.ReplaceAll(sample, "       100 ns/op", "       200 ns/op")), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-baseline", baseline, slow}, &out); code != 0 {
		t.Fatalf("warn-only compare exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "WARN") {
		t.Fatalf("regression not flagged: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-fail", "-baseline", baseline, slow}, &out); code != 1 {
		t.Fatalf("-fail compare exited %d, want 1: %s", code, out.String())
	}
}

func TestGroupNames(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEngineOracleRecord/workers=8": "engine",
		"BenchmarkEngineCacheWarm":              "engine",
		"BenchmarkSimRunEpoch":                  "sim",
		"BenchmarkCounterAdd":                   "obs",
		"BenchmarkGoldenDigest":                 "obs",
		"BenchmarkFigure8":                      "figure",
		"BenchmarkTable6":                       "figure",
	}
	for name, want := range cases {
		if got := group(name); got != want {
			t.Errorf("group(%s) = %s, want %s", name, got, want)
		}
	}
}

// TestWarnLinesNameGroup checks a regression warning carries its subsystem
// group so CI logs are greppable per subsystem.
func TestWarnLinesNameGroup(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	const engSample = "BenchmarkEngineCacheWarm-8 \t 100\t 1000 ns/op\n"
	in := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(in, []byte(engSample), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-write", "-baseline", baseline, in}, &out); code != 0 {
		t.Fatalf("write failed: %s", out.String())
	}
	slow := filepath.Join(dir, "slow.out")
	if err := os.WriteFile(slow, []byte(strings.ReplaceAll(engSample, "1000 ns/op", "1500 ns/op")), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	run([]string{"-baseline", baseline, slow}, &out)
	if !strings.Contains(out.String(), "[engine] WARN") {
		t.Fatalf("warning does not name the engine group: %s", out.String())
	}
}

// TestHotPathThreshold checks the engine hot-path benchmarks warn at 10%
// even though the default threshold is 15%.
func TestHotPathThreshold(t *testing.T) {
	if th := thresholdFor("BenchmarkEngineOracleRecord/workers=1", 0.15); th != 0.10 {
		t.Errorf("oracle-record threshold = %v, want 0.10", th)
	}
	if th := thresholdFor("BenchmarkEngineCacheCold", 0.15); th != 0.10 {
		t.Errorf("engine-cache threshold = %v, want 0.10", th)
	}
	if th := thresholdFor("BenchmarkFigure8", 0.15); th != 0.15 {
		t.Errorf("figure threshold = %v, want the global 0.15", th)
	}
	// An explicitly tighter global wins over the hot-path bar.
	if th := thresholdFor("BenchmarkEngineCacheCold", 0.05); th != 0.05 {
		t.Errorf("tight global threshold = %v, want 0.05", th)
	}

	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	const hot = "BenchmarkEngineOracleRecord/workers=1-8 \t 10\t 1000000 ns/op\n"
	in := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(in, []byte(hot), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-write", "-baseline", baseline, in}, &out); code != 0 {
		t.Fatalf("write failed: %s", out.String())
	}
	// +12%: within the old 15% bar, outside the hot-path 10% bar.
	slow := filepath.Join(dir, "slow.out")
	if err := os.WriteFile(slow, []byte(strings.ReplaceAll(hot, "1000000 ns/op", "1120000 ns/op")), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	run([]string{"-baseline", baseline, slow}, &out)
	if !strings.Contains(out.String(), "WARN regression > 10%") {
		t.Fatalf("hot-path +12%% not flagged at the 10%% bar: %s", out.String())
	}
}

// TestAllocRegression checks allocs/op growth past the threshold warns.
func TestAllocRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	const lean = "BenchmarkEngineCacheWarm-8 \t 100\t 1000 ns/op\t 500 B/op\t 100 allocs/op\n"
	in := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(in, []byte(lean), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-write", "-baseline", baseline, in}, &out); code != 0 {
		t.Fatalf("write failed: %s", out.String())
	}
	fat := filepath.Join(dir, "fat.out")
	if err := os.WriteFile(fat, []byte(strings.ReplaceAll(lean, " 100 allocs/op", " 200 allocs/op")), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-fail", "-baseline", baseline, fat}, &out); code != 1 {
		t.Fatalf("alloc regression exited %d, want 1: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "WARN allocs/op regression") {
		t.Fatalf("alloc regression not flagged: %s", out.String())
	}
}

// TestScalingGate exercises the parallel-speedup floor: pass, fail, and the
// single-CPU skip.
func TestScalingGate(t *testing.T) {
	write := func(t *testing.T, name, content string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	const good = `BenchmarkEngineOracleRecord/workers=1-8 	 10	 8000000 ns/op
BenchmarkEngineOracleRecord/workers=8-8 	 10	 2000000 ns/op
`
	var out strings.Builder
	in := write(t, "good.out", good)
	if code := run([]string{"-scaling", "BenchmarkEngineOracleRecord", "-scaling-min", "2.0", in}, &out); code != 0 {
		t.Fatalf("4x speedup failed the 2x floor (%d): %s", code, out.String())
	}

	const flat = `BenchmarkEngineOracleRecord/workers=1-8 	 10	 8000000 ns/op
BenchmarkEngineOracleRecord/workers=8-8 	 10	 7900000 ns/op
`
	out.Reset()
	in = write(t, "flat.out", flat)
	if code := run([]string{"-scaling", "BenchmarkEngineOracleRecord", "-scaling-min", "2.0", in}, &out); code != 1 {
		t.Fatalf("flat scaling exited %d, want 1: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL scaling regression") {
		t.Fatalf("scaling failure not reported: %s", out.String())
	}

	// Single-CPU run (no/-1 suffix): the gate must skip, not fail.
	const oneCPU = `BenchmarkEngineOracleRecord/workers=1 	 10	 8000000 ns/op
BenchmarkEngineOracleRecord/workers=8 	 10	 8000000 ns/op
`
	out.Reset()
	in = write(t, "one.out", oneCPU)
	if code := run([]string{"-scaling", "BenchmarkEngineOracleRecord", "-scaling-min", "2.0", in}, &out); code != 0 {
		t.Fatalf("single-CPU gate exited %d, want skip/0: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Fatalf("single-CPU gate did not report skip: %s", out.String())
	}
}
