// Command benchdiff compares `go test -bench` output against a committed
// baseline (BENCH_BASELINE.json) and flags regressions, a dependency-free
// stand-in for benchstat sized for this repository's CI. With -write it
// (re)generates the baseline instead.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | tee bench.out
//	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json bench.out
//	go run ./cmd/benchdiff -write -baseline BENCH_BASELINE.json bench.out
//
// Comparison is warn-only by default (exit 0) because single-run CI
// benchmark numbers are noisy; -fail turns time regressions into a non-zero
// exit for local use. Warning lines are prefixed with the benchmark's
// subsystem group ([engine], [sim], [obs], [verify], [figure]) so CI logs
// are greppable per subsystem.
//
// Allocation counts (allocs/op, requires -benchmem in the run) are compared
// exactly like times but against a tighter bar: they are deterministic, so
// any growth past the threshold is a real regression, not noise.
//
// The -scaling gate checks parallel speedup instead of absolute time: with
// -scaling BenchmarkEngineOracleRecord -scaling-min 2.0 it fails (exit 1)
// unless <name>/workers=8 is at least 2× faster than <name>/workers=1. The
// gate skips itself when the run's GOMAXPROCS (the -N benchmark-name
// suffix) is below 2, since a single-CPU runner cannot exhibit speedup.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference: ns/op (and allocs/op when
// the run was taken with -benchmem) per benchmark, keyed by name with the
// GOMAXPROCS suffix stripped so the file is portable across machines with
// different core counts.
type Baseline struct {
	Note       string             `json:"note"`
	Benchmarks map[string]float64 `json:"benchmarks"`
	Allocs     map[string]float64 `json:"allocs,omitempty"`
}

// benchLine matches standard testing output:
// BenchmarkName-8   1234   5678 ns/op   90 B/op   1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.e+]+) ns/op(?:\s+([0-9.e+]+) B/op\s+([0-9.e+]+) allocs/op)?`)

// hotPathThreshold is the tighter warn bar for the engine hot-path
// benchmarks this repository actively defends (ISSUE 8): the oracle-record
// scaling suite and the engine cache paths.
const hotPathThreshold = 0.10

var hotPathPrefixes = []string{
	"BenchmarkEngineOracleRecord/",
	"BenchmarkEngineCache",
}

// group names the subsystem a benchmark exercises, for greppable CI logs.
func group(name string) string {
	switch {
	case strings.HasPrefix(name, "BenchmarkEngine"):
		return "engine"
	case strings.HasPrefix(name, "BenchmarkSim"), strings.HasPrefix(name, "BenchmarkBank"),
		strings.HasPrefix(name, "BenchmarkMachine"), strings.HasPrefix(name, "BenchmarkTrace"):
		return "sim"
	case strings.HasPrefix(name, "BenchmarkCounter"), strings.HasPrefix(name, "BenchmarkHistogram"),
		strings.HasPrefix(name, "BenchmarkGolden"), strings.HasPrefix(name, "BenchmarkScenario"):
		return "obs"
	case strings.HasPrefix(name, "BenchmarkMux"), strings.HasPrefix(name, "BenchmarkTenant"):
		return "tenant"
	default:
		return "figure"
	}
}

// thresholdFor returns the warn threshold for one benchmark: the hot-path
// bar when it is tighter than the global flag, the flag otherwise.
func thresholdFor(name string, global float64) float64 {
	for _, p := range hotPathPrefixes {
		if strings.HasPrefix(name, p) {
			if hotPathThreshold < global {
				return hotPathThreshold
			}
			break
		}
	}
	return global
}

// parsed is one run's extracted measurements.
type parsed struct {
	ns     map[string]float64
	allocs map[string]float64
	procs  int // max GOMAXPROCS suffix seen (1 when absent)
}

// parseBench extracts measurements from -bench output. Repeated runs of the
// same benchmark keep the minimum ns/op (the least-noise sample) and its
// allocs/op alongside.
func parseBench(r io.Reader) (parsed, error) {
	p := parsed{ns: map[string]float64{}, allocs: map[string]float64{}, procs: 1}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if m[2] != "" {
			if n, err := strconv.Atoi(m[2]); err == nil && n > p.procs {
				p.procs = n
			}
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return parsed{}, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := p.ns[m[1]]; ok && ns >= prev {
			continue
		}
		p.ns[m[1]] = ns
		if m[5] != "" {
			if a, err := strconv.ParseFloat(m[5], 64); err == nil {
				p.allocs[m[1]] = a
			}
		}
	}
	return p, sc.Err()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(w)
	baselinePath := fs.String("baseline", "BENCH_BASELINE.json", "baseline file")
	write := fs.Bool("write", false, "write the baseline from the input instead of comparing")
	threshold := fs.Float64("threshold", 0.15, "relative ns/op regression that triggers a warning (hot-path benchmarks use 10% when tighter)")
	failOnRegress := fs.Bool("fail", false, "exit non-zero on regression (default: warn only)")
	scaling := fs.String("scaling", "", "benchmark family for the parallel-scaling gate (checks <name>/workers=8 vs <name>/workers=1)")
	scalingMin := fs.Float64("scaling-min", 2.0, "minimum workers=8 over workers=1 speedup the -scaling gate requires")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(w, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(w, "benchdiff:", err)
		return 2
	}
	if len(got.ns) == 0 {
		fmt.Fprintln(w, "benchdiff: no benchmark lines in input")
		return 2
	}

	if *scaling != "" {
		return runScalingGate(w, got, *scaling, *scalingMin)
	}

	if *write {
		b := Baseline{
			Note:       "committed benchmark reference; regenerate with: go test -run=NONE -bench=. -benchmem ./... | go run ./cmd/benchdiff -write",
			Benchmarks: got.ns,
		}
		if len(got.allocs) > 0 {
			b.Allocs = got.allocs
		}
		data, err := json.MarshalIndent(b, "", " ")
		if err != nil {
			fmt.Fprintln(w, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(w, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(w, "benchdiff: wrote %d benchmarks to %s\n", len(got.ns), *baselinePath)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(w, "benchdiff:", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(w, "benchdiff: %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, n := range names {
		b := base.Benchmarks[n]
		g, ok := got.ns[n]
		if !ok {
			fmt.Fprintf(w, "%-44s %14.1f %14s %8s  [%s] MISSING from current run\n", n, b, "-", "-", group(n))
			regressions++
			continue
		}
		delta := (g - b) / b
		th := thresholdFor(n, *threshold)
		mark := ""
		if delta > th {
			mark = fmt.Sprintf("  [%s] WARN regression > %.0f%%", group(n), th*100)
			regressions++
		}
		fmt.Fprintf(w, "%-44s %14.1f %14.1f %+7.1f%%%s\n", n, b, g, delta*100, mark)
	}
	for n := range got.ns {
		if _, ok := base.Benchmarks[n]; !ok {
			fmt.Fprintf(w, "%-44s %14s %14.1f %8s  new (not in baseline; re-bless with -write)\n", n, "-", got.ns[n], "-")
		}
	}

	// Allocation regressions: allocs/op is deterministic per benchmark, so a
	// growth past the threshold is a real change, not noise. Compared only
	// for benchmarks present with -benchmem on both sides.
	allocNames := make([]string, 0, len(base.Allocs))
	for n := range base.Allocs {
		allocNames = append(allocNames, n)
	}
	sort.Strings(allocNames)
	for _, n := range allocNames {
		b, g := base.Allocs[n], got.allocs[n]
		if _, ok := got.allocs[n]; !ok || b <= 0 {
			continue
		}
		if delta := (g - b) / b; delta > thresholdFor(n, *threshold) && g-b >= 8 {
			fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%%  [%s] WARN allocs/op regression\n",
				n+" (allocs)", b, g, delta*100, group(n))
			regressions++
		}
	}

	if regressions > 0 {
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) regressed or went missing\n", regressions)
		if *failOnRegress {
			return 1
		}
	}
	return 0
}

// runScalingGate enforces the parallel-speedup floor: family/workers=8 must
// be at least min× faster than family/workers=1. Unlike the warn-only time
// comparison this gate always fails hard — speedup is a ratio within one
// run, so machine-to-machine noise cancels out. It skips (exit 0) on
// single-CPU runs, which cannot exhibit parallel speedup.
func runScalingGate(w io.Writer, got parsed, family string, min float64) int {
	if got.procs < 2 {
		fmt.Fprintf(w, "benchdiff: scaling gate skipped (GOMAXPROCS=%d; need >= 2)\n", got.procs)
		return 0
	}
	one, ok1 := got.ns[family+"/workers=1"]
	eight, ok8 := got.ns[family+"/workers=8"]
	if !ok1 || !ok8 {
		fmt.Fprintf(w, "benchdiff: scaling gate: %s/workers={1,8} not both present in input\n", family)
		return 2
	}
	speedup := one / eight
	fmt.Fprintf(w, "benchdiff: [%s] %s workers=8 speedup: %.2fx (floor %.2fx)\n", group(family+"/"), family, speedup, min)
	if speedup < min {
		fmt.Fprintf(w, "benchdiff: [%s] FAIL scaling regression: %.2fx < %.2fx\n", group(family+"/"), speedup, min)
		return 1
	}
	return 0
}
