// Command benchdiff compares `go test -bench` output against a committed
// baseline (BENCH_BASELINE.json) and flags regressions, a dependency-free
// stand-in for benchstat sized for this repository's CI. With -write it
// (re)generates the baseline instead.
//
// Usage:
//
//	go test -run=NONE -bench=. ./... | tee bench.out
//	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json bench.out
//	go run ./cmd/benchdiff -write -baseline BENCH_BASELINE.json bench.out
//
// Comparison is warn-only by default (exit 0) because single-run CI
// benchmark numbers are noisy; -fail turns regressions into a non-zero
// exit for local use.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark reference: geometric ns/op per
// benchmark, keyed by name with the GOMAXPROCS suffix stripped so the file
// is portable across machines with different core counts.
type Baseline struct {
	Note       string             `json:"note"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches standard testing output:
// BenchmarkName-8   1234   5678 ns/op   90 B/op   1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parseBench extracts name → ns/op from -bench output. Repeated runs of
// the same benchmark keep the minimum (the least-noise sample).
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(w)
	baselinePath := fs.String("baseline", "BENCH_BASELINE.json", "baseline file")
	write := fs.Bool("write", false, "write the baseline from the input instead of comparing")
	threshold := fs.Float64("threshold", 0.15, "relative ns/op regression that triggers a warning")
	failOnRegress := fs.Bool("fail", false, "exit non-zero on regression (default: warn only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(w, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(w, "benchdiff:", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintln(w, "benchdiff: no benchmark lines in input")
		return 2
	}

	if *write {
		b := Baseline{
			Note:       "committed benchmark reference; regenerate with: go test -run=NONE -bench=. ./... | go run ./cmd/benchdiff -write",
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(b, "", " ")
		if err != nil {
			fmt.Fprintln(w, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(w, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(w, "benchdiff: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(w, "benchdiff:", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(w, "benchdiff: %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, n := range names {
		b := base.Benchmarks[n]
		g, ok := got[n]
		if !ok {
			fmt.Fprintf(w, "%-40s %14.1f %14s %8s  MISSING from current run\n", n, b, "-", "-")
			regressions++
			continue
		}
		delta := (g - b) / b
		mark := ""
		if delta > *threshold {
			mark = fmt.Sprintf("  WARN regression > %.0f%%", *threshold*100)
			regressions++
		}
		fmt.Fprintf(w, "%-40s %14.1f %14.1f %+7.1f%%%s\n", n, b, g, delta*100, mark)
	}
	for n := range got {
		if _, ok := base.Benchmarks[n]; !ok {
			fmt.Fprintf(w, "%-40s %14s %14.1f %8s  new (not in baseline; re-bless with -write)\n", n, "-", got[n], "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) regressed past %.0f%% or went missing\n", regressions, *threshold*100)
		if *failOnRegress {
			return 1
		}
	}
	return 0
}
