package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// buildDaemon compiles the sparseadaptd binary into a per-test temp dir
// (the go build cache makes repeat builds cheap).
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sparseadaptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running sparseadaptd process under test.
type daemon struct {
	cmd    *exec.Cmd
	base   string          // server root parsed from the listening line
	boot   string          // stdout lines before the listening line
	rest   strings.Builder // stdout after the listening line
	copied chan struct{}
}

// startDaemon launches the binary and waits for its listening line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...), copied: make(chan struct{})}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = os.Stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.cmd.Process.Kill() }) //nolint:errcheck // backstop if the test fails early
	sc := bufio.NewScanner(stdout)
	var boot strings.Builder
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
			d.base = addr
			break
		}
		boot.WriteString(sc.Text())
		boot.WriteByte('\n')
	}
	d.boot = boot.String()
	if d.base == "" {
		t.Fatalf("daemon never announced its address: %v\nboot output:\n%s", sc.Err(), d.boot)
	}
	go func() {
		defer close(d.copied)
		io.Copy(&d.rest, stdout) //nolint:errcheck // test capture
	}()
	return d
}

// TestDaemonEndToEnd boots the real sparseadaptd binary on a random port,
// drives the full job lifecycle through the Go client (submit → stream →
// result), scrapes /metrics, and checks SIGTERM produces a clean drain and
// exit 0 — the whole service surface as an operator sees it.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	d := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "8")

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c := client.New(d.base)

	st, err := c.Submit(ctx, server.JobRequest{Mode: "adaptive", Kernel: "spmspv", Matrix: "R04", Scale: "test"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	epochs := 0
	if err := c.Stream(ctx, st.ID, func(ev server.Event) error {
		if ev.Type == "epoch" {
			epochs++
		}
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != server.StateDone || final.Result == nil {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if epochs != final.Result.Epochs || epochs == 0 {
		t.Errorf("streamed %d epochs, result says %d", epochs, final.Result.Epochs)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"server_jobs_submitted_total 1",
		"server_jobs_completed_total 1",
		"server_http_requests_total",
		"engine_tasks_completed_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain the pipe before Wait: Wait closes it and would race the copy.
	<-d.copied
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	if !strings.Contains(d.rest.String(), "shutdown complete") {
		t.Errorf("daemon did not report a clean shutdown; output:\n%s", d.rest.String())
	}
}

// TestDaemonCrashRecovery is the headline durability scenario: a daemon is
// SIGKILLed with jobs accepted, and the rebooted daemon — same journal,
// same cache — completes every one of them with results byte-for-byte
// identical to an uninterrupted run. kill -9 allows no drain, no journal
// close, no goodbye: whatever recovery finds on disk is all it gets.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	storeDir, cacheDir := t.TempDir(), t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	reqs := []server.JobRequest{
		{Mode: "static", Matrix: "R04", Scale: "test"},
		{Mode: "static", Matrix: "R04", Scale: "test", Seed: 42},
	}

	// Uninterrupted reference results, computed in-process.
	want := make([]string, len(reqs))
	refSrv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	refSrv.Start()
	defer refSrv.Drain(context.Background()) //nolint:errcheck // test teardown
	ref := client.New(refTS.URL)
	for i, req := range reqs {
		st, err := ref.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := ref.Wait(ctx, st.ID)
		if err != nil || final.State != server.StateDone {
			t.Fatalf("reference job %d: %v (state %s)", i, err, final.State)
		}
		want[i] = marshalResult(t, final)
	}

	// Boot, submit both jobs, wait for the first, and SIGKILL with the
	// second possibly queued, running, or just finished — recovery must
	// cope with any of those honestly.
	d1 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-workers", "1",
		"-store-dir", storeDir, "-cache-dir", cacheDir)
	c1 := client.New(d1.base)
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		st, err := c1.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	if final, err := c1.Wait(ctx, ids[0]); err != nil || final.State != server.StateDone {
		t.Fatalf("first job before crash: %v (state %s)", err, final.State)
	}
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL, no drain
		t.Fatal(err)
	}
	<-d1.copied
	d1.cmd.Wait() //nolint:errcheck // killed: non-zero exit is the point

	// Reboot on the same journal and cache.
	d2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-workers", "1",
		"-store-dir", storeDir, "-cache-dir", cacheDir)
	t.Logf("reboot output: %q", d2.boot)
	c2 := client.New(d2.base)
	for i, id := range ids {
		final, err := c2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s after reboot: %v", id, err)
		}
		if final.State != server.StateDone {
			t.Fatalf("%s after reboot: state %s (%s), want done", id, final.State, final.Error)
		}
		if !final.Recovered {
			t.Errorf("%s does not carry the recovered flag", id)
		}
		if got := marshalResult(t, final); got != want[i] {
			t.Errorf("%s result differs from uninterrupted run:\n got %s\nwant %s", id, got, want[i])
		}
	}

	// And the recovered daemon still shuts down cleanly.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	<-d2.copied
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("recovered daemon exit after SIGTERM: %v", err)
	}
	if !strings.Contains(d2.rest.String(), "shutdown complete") {
		t.Errorf("recovered daemon did not report a clean shutdown; output:\n%s", d2.rest.String())
	}
}

func marshalResult(t *testing.T, st server.JobStatus) string {
	t.Helper()
	if st.Result == nil {
		t.Fatalf("job %s has no result", st.ID)
	}
	data, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDaemonVersionFlag checks -version prints the build identity and
// exits 0 without binding a port.
func TestDaemonVersionFlag(t *testing.T) {
	out := capture(t, func(stdout *os.File) int {
		return run([]string{"-version"}, stdout, os.Stderr)
	})
	if !strings.Contains(out, "sparseadaptd") {
		t.Errorf("version output %q does not name the tool", out)
	}
}

// capture runs fn with a pipe as stdout and returns what it wrote.
func capture(t *testing.T, fn func(*os.File) int) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if code := fn(w); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
