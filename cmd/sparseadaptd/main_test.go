package main

import (
	"bufio"
	"context"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// TestDaemonEndToEnd boots the real sparseadaptd binary on a random port,
// drives the full job lifecycle through the Go client (submit → stream →
// result), scrapes /metrics, and checks SIGTERM produces a clean drain and
// exit 0 — the whole service surface as an operator sees it.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "sparseadaptd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // backstop if the test fails early

	// The daemon prints "sparseadaptd listening on http://<addr>" once the
	// listener is bound; everything after that is captured for the
	// shutdown assertion.
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address: %v", sc.Err())
	}
	var rest strings.Builder
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		io.Copy(&rest, stdout) //nolint:errcheck // test capture
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c := client.New(base)

	st, err := c.Submit(ctx, server.JobRequest{Mode: "adaptive", Kernel: "spmspv", Matrix: "R04", Scale: "test"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	epochs := 0
	if err := c.Stream(ctx, st.ID, func(ev server.Event) error {
		if ev.Type == "epoch" {
			epochs++
		}
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != server.StateDone || final.Result == nil {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if epochs != final.Result.Epochs || epochs == 0 {
		t.Errorf("streamed %d epochs, result says %d", epochs, final.Result.Epochs)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"server_jobs_submitted_total 1",
		"server_jobs_completed_total 1",
		"server_http_requests_total",
		"engine_tasks_completed_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain the pipe before Wait: Wait closes it and would race the copy.
	<-drained
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	if !strings.Contains(rest.String(), "shutdown complete") {
		t.Errorf("daemon did not report a clean shutdown; output:\n%s", rest.String())
	}
}

// TestDaemonVersionFlag checks -version prints the build identity and
// exits 0 without binding a port.
func TestDaemonVersionFlag(t *testing.T) {
	out := capture(t, func(stdout *os.File) int {
		return run([]string{"-version"}, stdout, os.Stderr)
	})
	if !strings.Contains(out, "sparseadaptd") {
		t.Errorf("version output %q does not name the tool", out)
	}
}

// capture runs fn with a pipe as stdout and returns what it wrote.
func capture(t *testing.T, fn func(*os.File) int) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if code := fn(w); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
