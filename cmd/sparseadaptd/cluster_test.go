package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"sparseadapt/internal/cluster"
	"sparseadapt/internal/server"
	"sparseadapt/internal/server/client"
)

// clusterAlive polls the coordinator topology endpoint until n workers
// are alive (or the deadline passes).
func clusterAlive(t *testing.T, ctx context.Context, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			var topo struct {
				Members []cluster.MemberInfo `json:"members"`
			}
			err = json.NewDecoder(resp.Body).Decode(&topo)
			resp.Body.Close()
			if err == nil {
				alive := 0
				for _, m := range topo.Members {
					if m.Alive {
						alive++
					}
				}
				if alive == n {
					return
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("coordinator never reported %d live workers", n)
}

// seedForOwner scans seeds until the validated request's fingerprint
// lands on want in a ring of the given nodes — the same placement the
// coordinator computes, so tests can steer jobs to a chosen worker.
func seedForOwner(t *testing.T, base server.JobRequest, want string, nodes ...string) server.JobRequest {
	t.Helper()
	r := cluster.NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	for seed := base.Seed; seed < base.Seed+4096; seed++ {
		req := base
		req.Seed = seed
		probe := req
		if err := probe.Validate(); err != nil {
			t.Fatal(err)
		}
		if owner, _ := r.Owner(probe.Fingerprint()); owner == want {
			return req
		}
	}
	t.Fatalf("no seed near %d places the job on %s", base.Seed, want)
	return base
}

// TestClusterEndToEnd is the distributed headline scenario: a real
// coordinator binary fronts two real worker binaries, one worker is
// SIGKILLed with jobs in flight, and every accepted job still reaches a
// terminal state exactly once with results byte-for-byte identical to a
// single-node run. kill -9 gives the worker no drain and the coordinator
// no goodbye: heartbeat silence and the severed relay are the only
// signals, and the ordinary retry path must re-place the orphans.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Three jobs steered to each worker: w1 will die holding its share.
	// Adaptive jobs run long enough (tens of ms each, serial on a
	// single-threaded worker) that the kill below reliably lands mid-job.
	var reqs []server.JobRequest
	for i := 0; i < 3; i++ {
		base := server.JobRequest{Mode: "adaptive", Matrix: "R04", Scale: "test", Seed: int64(1000 * (i + 1))}
		reqs = append(reqs, seedForOwner(t, base, "w1", "w1", "w2"))
		base.Seed += 500
		reqs = append(reqs, seedForOwner(t, base, "w2", "w1", "w2"))
	}

	// Single-node reference results, computed in-process.
	want := make([]string, len(reqs))
	refSrv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	refSrv.Start()
	defer refSrv.Drain(context.Background()) //nolint:errcheck // test teardown
	ref := client.New(refTS.URL)
	for i, req := range reqs {
		st, err := ref.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := ref.Wait(ctx, st.ID)
		if err != nil || final.State != server.StateDone {
			t.Fatalf("reference job %d: %v (state %s)", i, err, final.State)
		}
		want[i] = marshalResult(t, final)
	}

	// The fleet: one coordinator, two single-threaded workers on fast
	// heartbeats so death detection fits in test time. -max-attempts 4
	// gives the re-placement headroom beyond the default.
	coord := startDaemon(t, bin, "-role", "coordinator", "-addr", "127.0.0.1:0",
		"-hb-interval", "100ms", "-hb-timeout", "400ms", "-max-attempts", "4")
	w1 := startDaemon(t, bin, "-role", "worker", "-addr", "127.0.0.1:0",
		"-coordinator", coord.base, "-node-id", "w1", "-hb-interval", "100ms", "-workers", "1")
	w2 := startDaemon(t, bin, "-role", "worker", "-addr", "127.0.0.1:0",
		"-coordinator", coord.base, "-node-id", "w2", "-hb-interval", "100ms", "-workers", "1")
	clusterAlive(t, ctx, coord.base, 2)

	c := client.New(coord.base)
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		st, err := c.SubmitWithRequestID(ctx, req, fmt.Sprintf("e2e-%d", i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// Wait until a w1-owned job is provably running (w1 executes serially,
	// so its other two are accepted-but-queued there), then SIGKILL w1.
	w1Running := false
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline) && !w1Running; {
		for i := 0; i < len(ids); i += 2 { // even indexes are w1-owned
			st, err := c.Get(ctx, ids[i])
			if err != nil {
				t.Fatal(err)
			}
			if st.State == server.StateRunning {
				w1Running = true
				break
			}
		}
		if !w1Running {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !w1Running {
		t.Fatal("no w1-owned job ever reached running")
	}
	if err := w1.cmd.Process.Kill(); err != nil { // SIGKILL, no drain
		t.Fatal(err)
	}
	<-w1.copied
	w1.cmd.Wait() //nolint:errcheck // killed: non-zero exit is the point

	// The sweeper must notice the silence and the fleet view shrink to one.
	clusterAlive(t, ctx, coord.base, 1)

	// Every accepted job still completes, and every result matches the
	// single-node reference byte for byte.
	for i, id := range ids {
		final, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if final.State != server.StateDone {
			t.Fatalf("%s ended %s (%s) after %d attempts, want done", id, final.State, final.Error, final.Attempts)
		}
		if got := marshalResult(t, final); got != want[i] {
			t.Errorf("%s result differs from single-node run:\n got %s\nwant %s", id, got, want[i])
		}
		if final.RequestID != fmt.Sprintf("e2e-%d", i) {
			t.Errorf("%s request id = %q, want e2e-%d", id, final.RequestID, i)
		}
	}

	// Exactly once: the coordinator's job table holds each id a single time.
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, st := range list {
		seen[st.ID]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("job %s appears %d times in the job table, want exactly 1", id, seen[id])
		}
	}

	// Resubmitting a surviving worker's job must be a cache hit end to end.
	st, err := c.Submit(ctx, reqs[1]) // w2-owned
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil || final.State != server.StateDone {
		t.Fatalf("resubmit: %v (state %s)", err, final.State)
	}
	if !final.CacheHit {
		t.Error("resubmitted job was recomputed, want a worker cache hit")
	}
	if got := marshalResult(t, final); got != want[1] {
		t.Errorf("cached result differs from single-node run:\n got %s\nwant %s", got, want[1])
	}

	// The cluster metric family is visible on the coordinator.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"cluster_workers_alive 1",
		"cluster_worker_deaths_total 1",
		"cluster_placements_total",
		"cluster_jobs_requeued_total",
		"cluster_forward_latency_seconds",
	} {
		if !strings.Contains(metrics, m) {
			t.Errorf("coordinator metrics missing %q", m)
		}
	}

	// The survivors drain cleanly.
	for name, d := range map[string]*daemon{"w2": w2, "coordinator": coord} {
		if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		<-d.copied
		if err := d.cmd.Wait(); err != nil {
			t.Fatalf("%s exit after SIGTERM: %v", name, err)
		}
		if !strings.Contains(d.rest.String(), "shutdown complete") {
			t.Errorf("%s did not report a clean shutdown; output:\n%s", name, d.rest.String())
		}
	}
}
