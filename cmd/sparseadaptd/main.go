// Command sparseadaptd is the simulation-as-a-service daemon: it serves
// the sparseadapt run modes (static, adaptive, resilient, batch) over an
// HTTP/JSON API with a bounded job queue, admission control, per-client
// rate limiting, SSE progress streaming, Prometheus metrics and pprof on
// one listener. See docs/SERVER.md for the API reference and capacity
// tuning guidance.
//
// Usage:
//
//	sparseadaptd -addr 127.0.0.1:8080 -workers 4 -queue 64
//
// SIGINT/SIGTERM drains gracefully: intake stops (submissions get 503),
// queued and in-flight jobs run to completion (bounded by -drain-timeout),
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"sparseadapt/internal/fault"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/server"
	"sparseadapt/internal/sigctx"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sparseadaptd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent job executions (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth; a full queue rejects with 429")
	rate := fs.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := fs.Int("burst", 8, "per-client submission burst")
	maxBody := fs.Int64("max-body", 8<<20, "request body limit in bytes (caps MatrixMarket uploads)")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "default and maximum per-job execution deadline")
	maxJobs := fs.Int("max-jobs", 1024, "retained job records before the oldest finished jobs are evicted")
	cacheDir := fs.String("cache-dir", "", "on-disk tier of the result cache (empty = memory only)")
	cacheEntries := fs.Int("cache-entries", 512, "in-memory result cache entries")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "grace period for in-flight jobs on shutdown")
	storeDir := fs.String("store-dir", "", "durable job journal directory; on boot the journal is replayed and interrupted jobs re-run (empty = no durability)")
	maxAttempts := fs.Int("max-attempts", 3, "execution attempts per job before quarantine")
	chaosSpec := fs.String("chaos", "", "deterministic chaos spec, e.g. exec-panic=0.2,journal-err=0.05,seed=7 (testing only)")
	version := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, obs.Version("sparseadaptd"))
		return 0
	}
	chaos, err := fault.ParseChaosSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 2
	}
	if !chaos.IsZero() {
		fmt.Fprintf(stderr, "warning: chaos injection active (%s) — not for production\n", chaos)
	}

	srv, err := server.New(server.Config{
		Workers: *workers, QueueDepth: *queue,
		RatePerSec: *rate, Burst: *burst,
		MaxBodyBytes: *maxBody, JobTimeout: *jobTimeout, MaxJobs: *maxJobs,
		CacheDir: *cacheDir, CacheEntries: *cacheEntries,
		StoreDir: *storeDir, MaxAttempts: *maxAttempts,
		Chaos: fault.NewChaos(chaos),
	})
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	if n := srv.Recovered(); n > 0 {
		fmt.Fprintf(stdout, "recovered %d interrupted jobs from the journal\n", n)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	srv.Start()
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	// The e2e harness parses this line to find the bound port; keep the
	// format stable.
	fmt.Fprintf(stdout, "sparseadaptd listening on http://%s\n", ln.Addr())

	ctx, stop := sigctx.WithSignals(context.Background(), stderr)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "error:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain jobs first so SSE subscribers receive their terminal events,
	// then close the HTTP side (Shutdown waits for those streams to end).
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "drain:", err)
		code = 1
	}
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "shutdown:", err)
		code = 1
	}
	// Compact and close the journal only after the drain: every job that
	// finished has its terminal record on disk, so the next boot recovers
	// nothing. (After a crash this never runs — that is what recovery is
	// for.)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(stderr, "store:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "shutdown complete")
	return code
}
