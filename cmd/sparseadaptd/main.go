// Command sparseadaptd is the simulation-as-a-service daemon: it serves
// the sparseadapt run modes (static, adaptive, resilient, batch) over an
// HTTP/JSON API with a bounded job queue, admission control, per-client
// rate limiting, SSE progress streaming, Prometheus metrics and pprof on
// one listener. See docs/SERVER.md for the API reference and capacity
// tuning guidance.
//
// Usage:
//
//	sparseadaptd -addr 127.0.0.1:8080 -workers 4 -queue 64
//
// The daemon also runs as one node of a cluster (see docs/SERVER.md):
//
//	sparseadaptd -role coordinator -addr :8080
//	sparseadaptd -role worker -addr :8081 -coordinator http://coord:8080
//
// A coordinator fronts the same API but executes nothing locally: jobs
// are placed on workers by consistent-hashing their content fingerprint,
// epoch streams are relayed, and a dead worker's in-flight jobs re-enter
// the ordinary retry path. Workers execute jobs and serve their result
// cache to peers.
//
// SIGINT/SIGTERM drains gracefully: intake stops (submissions get 503),
// queued and in-flight jobs run to completion (bounded by -drain-timeout),
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"sparseadapt/internal/cluster"
	"sparseadapt/internal/fault"
	"sparseadapt/internal/flagcheck"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/server"
	"sparseadapt/internal/sigctx"
	"sparseadapt/internal/tenant"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// node is the role-independent lifecycle surface main drives: the
// standalone server, the cluster coordinator and the cluster worker all
// satisfy it.
type node interface {
	Start()
	Drain(context.Context) error
	Close() error
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sparseadaptd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent job executions (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth; a full queue rejects with 429")
	rate := fs.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := fs.Int("burst", 8, "per-client submission burst")
	maxBody := fs.Int64("max-body", 8<<20, "request body limit in bytes (caps MatrixMarket uploads)")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "default and maximum per-job execution deadline")
	maxJobs := fs.Int("max-jobs", 1024, "retained job records before the oldest finished jobs are evicted")
	cacheDir := fs.String("cache-dir", "", "on-disk tier of the result cache (empty = memory only)")
	cacheEntries := fs.Int("cache-entries", 512, "in-memory result cache entries")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "grace period for in-flight jobs on shutdown")
	storeDir := fs.String("store-dir", "", "durable job journal directory; on boot the journal is replayed and interrupted jobs re-run (empty = no durability)")
	maxAttempts := fs.Int("max-attempts", 3, "execution attempts per job before quarantine")
	chaosSpec := fs.String("chaos", "", "deterministic chaos spec, e.g. exec-panic=0.2,journal-err=0.05,seed=7 (testing only)")
	tenantInflight := fs.Int("tenant-max-inflight", 0, "per-tenant queued+running job cap (0 = unlimited)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant submissions per second (0 = unlimited)")
	tenantBurst := fs.Float64("tenant-burst", 4, "per-tenant submission burst")
	role := fs.String("role", "", "cluster role: coordinator|worker (empty = standalone)")
	coordinator := fs.String("coordinator", "", "coordinator base URL (worker role)")
	advertise := fs.String("advertise", "", "URL peers reach this node at (worker role; default http://<bound address>)")
	nodeID := fs.String("node-id", "", "stable identity on the placement ring (worker role; default the advertise address)")
	hbInterval := fs.Duration("hb-interval", time.Second, "heartbeat cadence (worker report / coordinator expectation)")
	hbTimeout := fs.Duration("hb-timeout", 3*time.Second, "heartbeat silence after which the coordinator declares a worker dead")
	ringReplicas := fs.Int("ring-replicas", cluster.DefaultRingReplicas, "virtual nodes per worker on the placement ring (coordinator role)")
	peerTimeout := fs.Duration("peer-timeout", 2*time.Second, "peer cache fetch / heartbeat request timeout (worker role)")
	version := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, obs.Version("sparseadaptd"))
		return 0
	}

	var check flagcheck.Check
	check.NonNegative("workers", *workers)
	check.Positive("queue", *queue)
	check.NonNegativeFloat("rate", *rate)
	check.Positive("burst", *burst)
	check.PositiveInt64("max-body", *maxBody)
	check.PositiveDuration("job-timeout", *jobTimeout)
	check.Positive("max-jobs", *maxJobs)
	check.Positive("cache-entries", *cacheEntries)
	check.PositiveDuration("drain-timeout", *drainTimeout)
	check.Positive("max-attempts", *maxAttempts)
	check.NonNegative("tenant-max-inflight", *tenantInflight)
	check.NonNegativeFloat("tenant-rate", *tenantRate)
	check.PositiveFloat("tenant-burst", *tenantBurst)
	check.PositiveDuration("hb-interval", *hbInterval)
	check.PositiveDuration("hb-timeout", *hbTimeout)
	check.Positive("ring-replicas", *ringReplicas)
	check.PositiveDuration("peer-timeout", *peerTimeout)
	if err := check.Err(); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 2
	}

	chaos, err := fault.ParseChaosSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 2
	}
	if !chaos.IsZero() {
		fmt.Fprintf(stderr, "warning: chaos injection active (%s) — not for production\n", chaos)
	}

	scfg := server.Config{
		Workers: *workers, QueueDepth: *queue,
		RatePerSec: *rate, Burst: *burst,
		MaxBodyBytes: *maxBody, JobTimeout: *jobTimeout, MaxJobs: *maxJobs,
		CacheDir: *cacheDir, CacheEntries: *cacheEntries,
		StoreDir: *storeDir, MaxAttempts: *maxAttempts,
		TenantQuota: tenant.Quota{MaxInflight: *tenantInflight, RatePerSec: *tenantRate, Burst: *tenantBurst},
		Chaos:       fault.NewChaos(chaos),
	}
	if scfg.TenantQuota.Enabled() {
		fmt.Fprintln(stdout, scfg.TenantQuota.String())
	}

	// Bind before constructing the node: a worker's advertise address
	// defaults to whatever port the kernel picked.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}

	var (
		app node
		srv *server.Server // the fronting job server of whichever role
	)
	switch *role {
	case "":
		s, err := server.New(scfg)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		app, srv = s, s
	case "coordinator":
		c, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Server:            scfg,
			HeartbeatInterval: *hbInterval,
			HeartbeatTimeout:  *hbTimeout,
			RingReplicas:      *ringReplicas,
		})
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		app, srv = c, c.Server()
	case "worker":
		if *coordinator == "" {
			fmt.Fprintln(stderr, "error: -role worker requires -coordinator")
			return 2
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		id := *nodeID
		if id == "" {
			id = adv
		}
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Server:            scfg,
			ID:                id,
			Advertise:         adv,
			Coordinator:       *coordinator,
			HeartbeatInterval: *hbInterval,
			PeerTimeout:       *peerTimeout,
		})
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		app, srv = w, w.Server()
	default:
		fmt.Fprintf(stderr, "error: unknown -role %q (coordinator|worker or empty)\n", *role)
		return 2
	}

	if n := srv.Recovered(); n > 0 {
		fmt.Fprintf(stdout, "recovered %d interrupted jobs from the journal\n", n)
	}
	app.Start()
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	// The e2e harness parses this line to find the bound port; keep the
	// format stable.
	fmt.Fprintf(stdout, "sparseadaptd listening on http://%s\n", ln.Addr())

	ctx, stop := sigctx.WithSignals(context.Background(), stderr)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "error:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain jobs first so SSE subscribers receive their terminal events,
	// then close the HTTP side (Shutdown waits for those streams to end).
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := app.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "drain:", err)
		code = 1
	}
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "shutdown:", err)
		code = 1
	}
	// Compact and close the journal only after the drain: every job that
	// finished has its terminal record on disk, so the next boot recovers
	// nothing. (After a crash this never runs — that is what recovery is
	// for.)
	if err := app.Close(); err != nil {
		fmt.Fprintln(stderr, "store:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "shutdown complete")
	return code
}
