package sparseadapt_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	sparseadapt "sparseadapt"
)

func TestSystemDefaults(t *testing.T) {
	sys := sparseadapt.NewSystem(sparseadapt.SystemConfig{})
	if sys == nil {
		t.Fatal("nil system")
	}
	// Invalid inputs are normalized, not fatal.
	sys2 := sparseadapt.NewSystem(sparseadapt.SystemConfig{Tiles: -1, EpochScale: -5})
	if sys2 == nil {
		t.Fatal("nil system from bad config")
	}
}

func TestPublicAPIFlow(t *testing.T) {
	sys := sparseadapt.NewSystem(sparseadapt.SystemConfig{EpochScale: 0.05})
	rng := rand.New(rand.NewSource(1))
	am := sparseadapt.Uniform(rng, 128, 128, 1200)
	a := am.ToCSC()
	x := sparseadapt.RandomVec(rng, 128, 0.5)

	y, w, err := sys.SpMSpV(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() == 0 || w.Trace == nil {
		t.Fatal("degenerate SpMSpV result")
	}

	model, err := sys.Train(sparseadapt.TrainSpec{
		Kernel: sparseadapt.KernelSpMSpV,
		Mode:   sparseadapt.EnergyEfficient,
		Scale:  0.1,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}

	dyn := sys.RunAdaptive(model, w)
	base := sys.RunStatic(sparseadapt.Baseline(), w)
	if dyn.Total.TimeSec <= 0 || base.Total.TimeSec <= 0 {
		t.Fatal("no simulated time")
	}
	if dyn.Total.FPOps != base.Total.FPOps {
		t.Fatalf("work not conserved: %v vs %v", dyn.Total.FPOps, base.Total.FPOps)
	}

	// Model persistence round-trip preserves behaviour.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := sparseadapt.SaveModel(path, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := sparseadapt.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	dyn2 := sys.RunAdaptive(loaded, w)
	if dyn2.Total != dyn.Total {
		t.Fatalf("loaded model behaves differently: %+v vs %+v", dyn2.Total, dyn.Total)
	}
}

func TestPublicAPIShapeErrors(t *testing.T) {
	sys := sparseadapt.NewSystem(sparseadapt.DefaultSystemConfig())
	rng := rand.New(rand.NewSource(2))
	a := sparseadapt.Uniform(rng, 8, 8, 10).ToCSC()
	xBad := sparseadapt.RandomVec(rng, 9, 0.5)
	if _, _, err := sys.SpMSpV(a, xBad); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	bBad := sparseadapt.Uniform(rng, 9, 8, 10).ToCSR()
	if _, _, err := sys.SpMSpM(a, bBad); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, _, err := sys.BFS(a, 99); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, _, err := sys.SSSP(a, -1); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestPublicAPIGraph(t *testing.T) {
	sys := sparseadapt.NewSystem(sparseadapt.SystemConfig{EpochScale: 0.1})
	rng := rand.New(rand.NewSource(3))
	g := sparseadapt.RMAT(rng, 128, 600).ToCSC()
	res, w, err := sys.BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || w.Trace == nil {
		t.Fatal("degenerate BFS")
	}
	run := sys.RunStatic(sparseadapt.MaxCfg(), w)
	if res.TEPS(run.Total.TimeSec) < 0 {
		t.Fatal("negative TEPS")
	}
}

func TestDatasetAccessible(t *testing.T) {
	ds := sparseadapt.Dataset()
	if len(ds) != 22 {
		t.Fatalf("dataset entries %d, want 22 (U1-P3 + R01-R16)", len(ds))
	}
	m := ds[0].Generate(0.05, 1)
	if m.NNZ() == 0 {
		t.Fatal("empty generated matrix")
	}
}

func TestStandardConfigsExposed(t *testing.T) {
	for _, c := range []sparseadapt.Config{
		sparseadapt.Baseline(), sparseadapt.BestAvgCache(),
		sparseadapt.BestAvgSPM(), sparseadapt.MaxCfg(),
	} {
		if !c.Valid() {
			t.Fatalf("invalid standard config %v", c)
		}
	}
}
