// Offload amortization: the host-side view of Section 3.1 — every kernel
// dispatch pays buffer allocation and data streaming over the host↔device
// link before the accelerator does any work. This example sweeps operand
// sizes and shows when offloading SpMSpV to the (adaptively controlled)
// Transmuter pays for its transfers.
//
//	go run ./examples/offload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/host"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

func main() {
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}
	epochScale := 0.1
	runner := host.NewRunner(chip, sim.DefaultBandwidth, epochScale)

	// One SparseAdapt model for all dispatch sizes.
	sw := trainer.DefaultSweep("spmspv", config.CacheMode, 0.2)
	sw.Chip = chip
	ds, err := trainer.Generate(sw, power.EnergyEfficient)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		log.Fatal(err)
	}

	link := runner.Link
	fmt.Printf("link: %.0f GB/s, %.1f us setup latency\n",
		link.BandwidthBytesPerSec/1e9, link.LatencySec*1e6)
	fmt.Printf("%-8s %10s %12s %12s %12s %12s\n",
		"dim", "bytes-in", "device(us)", "xfer(us)", "total(us)", "efficiency")

	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{64, 256, 1024, 4096} {
		am := matrix.RMATDefault(rng, dim, dim*12)
		a := am.ToCSC()
		x := matrix.RandomVec(rng, dim, 0.5)
		y, w, err := kernels.SpMSpV(a, x, chip.NGPE(), chip.Tiles)
		if err != nil {
			log.Fatal(err)
		}
		off := host.Offload{
			Workload: w,
			BytesIn:  host.InputBytes(a.NNZ(), dim) + host.InputBytes(x.NNZ(), dim),
			BytesOut: y.NNZ() * 12,
		}
		res, err := runner.RunAdaptive(ens,
			core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: epochScale},
			config.Baseline, off)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %10d %12.2f %12.2f %12.2f %11.0f%%\n",
			dim, off.BytesIn,
			res.Device.TimeSec*1e6, res.TransferSec*1e6, res.Total.TimeSec*1e6,
			res.Efficiency*100)
	}
	fmt.Println("\nexpected shape: small dispatches are transfer-dominated; larger operands")
	fmt.Println("amortize the link and approach pure device efficiency.")
}
