// Policy tuning: compare the reconfiguration-cost-aware policies of
// Section 4.4 (conservative, aggressive, hybrid with a tolerance sweep) on
// an outer-product SpMSpM whose multiply→merge transition and data-driven
// implicit phases give the controller real decisions to make.
//
//	go run ./examples/policytuning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

func main() {
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}
	epochScale := 0.1

	// The Figure 1 motivating matrix: dense columns separating sparse
	// strips, so outer products alternate dense and sparse work.
	rng := rand.New(rand.NewSource(5))
	am := matrix.DenseStrips(rng, 192, 0.15, 8)
	a := am.ToCSC()
	_, w, err := kernels.SpMSpM(a, am.ToCSR().Transpose(), chip.NGPE(), chip.Tiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: OP-SpMSpM on a %d-dim dense-strip matrix (%d NNZ), %d epochs\n",
		192, am.NNZ(), len(w.Epochs(epochScale)))

	sw := trainer.DefaultSweep("spmspm", config.CacheMode, 0.2)
	sw.Chip = chip
	ds, err := trainer.Generate(sw, power.PowerPerformance)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		log.Fatal(err)
	}

	base := core.RunStatic(chip, sim.DefaultBandwidth, config.Baseline, w, epochScale).Total

	type scheme struct {
		name string
		opts core.Options
	}
	schemes := []scheme{
		{"conservative", core.Options{Policy: core.Conservative, EpochScale: epochScale}},
		{"aggressive", core.Options{Policy: core.Aggressive, EpochScale: epochScale}},
	}
	for _, tol := range []float64{0.1, 0.2, 0.4, 0.8} {
		schemes = append(schemes, scheme{
			fmt.Sprintf("hybrid %.0f%%", tol*100),
			core.Options{Policy: core.Hybrid, Tolerance: tol, EpochScale: epochScale},
		})
	}

	fmt.Printf("\n%-14s %12s %14s %10s\n", "policy", "GFLOPS gain", "GFLOPS/W gain", "reconfigs")
	for _, s := range schemes {
		m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
		res := core.NewController(ens, s.opts).Run(m, w)
		fmt.Printf("%-14s %11.2fx %13.2fx %10d\n", s.name,
			res.Total.GFLOPS()/base.GFLOPS(),
			res.Total.GFLOPSPerW()/base.GFLOPSPerW(),
			res.Reconfig)
	}
	fmt.Println("\nexpected shape: aggressive reconfigures most but pays flush penalties;")
	fmt.Println("conservative is safe but misses implicit phases; moderate hybrid tolerance")
	fmt.Println("(the paper finds 10-40%) balances the two.")
}
