// Epochtrace: the worked observability example from docs/OBSERVABILITY.md.
// It trains a small SparseAdapt model, runs SpMSpV under runtime control
// with the full observability layer attached — metrics registry, epoch
// trace recorder, run manifest — and writes three artifacts to ./obs-out:
//
//	trace.json    Chrome trace_event JSON; open at https://ui.perfetto.dev
//	metrics.prom  Prometheus text exposition of the sim_*/controller_* family
//	manifest.json reproducibility manifest (seed, platform, VCS revision)
//
//	go run ./examples/epochtrace
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/obs"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

func main() {
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}

	// 1. Workload and model, as in examples/quickstart.
	rng := rand.New(rand.NewSource(7))
	a := matrix.RMATDefault(rng, 512, 6000).ToCSC()
	x := matrix.RandomVec(rng, 512, 0.5)
	_, w, err := kernels.SpMSpV(a, x, chip.NGPE(), chip.Tiles)
	if err != nil {
		log.Fatal(err)
	}
	sw := trainer.DefaultSweep("spmspv", config.CacheMode, 0.2)
	sw.Chip = chip
	ds, err := trainer.Generate(sw, power.EnergyEfficient)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The observability layer: one registry for aggregate metrics, one
	// trace recorder for the per-epoch timeline, one manifest for
	// reproducibility. All three are plain values — no global state.
	reg := obs.NewRegistry()
	trace := obs.NewTraceRecorder()
	manifest := obs.NewManifest("examples/epochtrace", os.Args[1:])
	manifest.Seed = 7

	// 3. Instrument the machine (sim_* metric family) and attach an
	// Observer to the controller (controller_* family + the epoch trace).
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	m.Instrument(reg)
	observer := core.NewObserver(reg, trace)
	observer.TraceCounters = true // include the Table 2 telemetry vector
	ctl := core.NewController(ens, core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: 0.2}).
		Observe(observer)
	dyn := ctl.Run(m, w)
	fmt.Printf("run: %d epochs, %d reconfigs, %.1f GFLOPS/W\n",
		len(dyn.Epochs), dyn.Reconfig, dyn.Total.GFLOPSPerW())

	// 4. Export. The trace file extension picks the format: .jsonl for
	// line-delimited records, anything else for Chrome trace_event JSON.
	dir := "obs-out"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, out := range []struct {
		path  string
		write func(string) error
	}{
		{filepath.Join(dir, "trace.json"), trace.WriteFile},
		{filepath.Join(dir, "metrics.prom"), reg.WriteFile},
		{filepath.Join(dir, "manifest.json"), manifest.WriteFile},
	} {
		if err := out.write(out.path); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out.path)
	}
	fmt.Println("open trace.json at https://ui.perfetto.dev (or chrome://tracing)")
}
