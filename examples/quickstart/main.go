// Quickstart: train a small SparseAdapt model, run sparse matrix-vector
// multiplication on the simulated Transmuter CGRA under runtime control,
// and compare against the static baseline configurations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

func main() {
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8} // the paper's 2×8 system

	// 1. Build a workload: y = A·x on a power-law matrix (the shape of
	// real-world graph data) with a 50%-dense sparse vector.
	rng := rand.New(rand.NewSource(7))
	a := matrix.RMATDefault(rng, 512, 6000).ToCSC()
	x := matrix.RandomVec(rng, 512, 0.5)
	y, w, err := kernels.SpMSpV(a, x, chip.NGPE(), chip.Tiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: SpMSpV, %dx%d matrix, %d nonzeros -> %d output nonzeros, %d traced FP ops\n",
		a.Rows, a.Cols, a.NNZ(), y.NNZ(), w.Trace.FPOps)

	// 2. Train the predictive model: sweep uniform-random inputs across
	// densities and bandwidths (a scaled-down Table 3), label each phase
	// with its best configuration, fit one decision tree per parameter.
	sw := trainer.DefaultSweep("spmspv", config.CacheMode, 0.2)
	sw.Chip = chip
	ds, err := trainer.Generate(sw, power.EnergyEfficient)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: trained on %d examples, one tree per runtime parameter\n", len(ds.Examples))

	// 3. Run under SparseAdapt control (hybrid policy, 40% tolerance) and
	// against the static comparison points of Table 4.
	epochScale := 0.2
	ctl := core.NewController(ens, core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: epochScale})
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	dyn := ctl.Run(m, w)

	fmt.Printf("\n%-12s %11s %12s %10s %12s\n", "scheme", "time(us)", "energy(uJ)", "GFLOPS", "GFLOPS/W")
	show := func(name string, t power.Metrics) {
		fmt.Printf("%-12s %11.2f %12.2f %10.4f %12.3f\n",
			name, t.TimeSec*1e6, t.EnergyJ*1e6, t.GFLOPS(), t.GFLOPSPerW())
	}
	for _, s := range []struct {
		name string
		cfg  config.Config
	}{
		{"baseline", config.Baseline},
		{"best-avg", config.BestAvgCache},
		{"max-cfg", config.MaxCfg},
	} {
		show(s.name, core.RunStatic(chip, sim.DefaultBandwidth, s.cfg, w, epochScale).Total)
	}
	show("sparseadapt", dyn.Total)

	base := core.RunStatic(chip, sim.DefaultBandwidth, config.Baseline, w, epochScale).Total
	fmt.Printf("\nSparseAdapt vs baseline: %.2fx GFLOPS/W with %d reconfigurations over %d epochs\n",
		dyn.Total.GFLOPSPerW()/base.GFLOPSPerW(), dyn.Reconfig, len(dyn.Epochs))

	// 4. Peek at the adaptation: configuration chosen per epoch.
	fmt.Println("\nper-epoch configuration (first 8 epochs):")
	for i, ep := range dyn.Epochs {
		if i >= 8 {
			break
		}
		fmt.Printf("  epoch %2d  %-40v  %6.3f GFLOPS/W\n", i, ep.Config, ep.Metrics.GFLOPSPerW())
	}
}
