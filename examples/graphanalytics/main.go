// Graph analytics: run BFS and single-source shortest path as iterative
// semiring SpMSpV (GraphBLAS style) on a synthetic social-network graph,
// with SparseAdapt adapting the hardware to the frontier's evolving
// sparsity — the implicit phases the paper is built around.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/graph"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

const epochScale = 0.2

func main() {
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}

	// A power-law "social network": a few hub users, many leaves.
	rng := rand.New(rand.NewSource(11))
	g := matrix.RMATDefault(rng, 1024, 12000).ToCSC()
	src := hub(g)
	fmt.Printf("graph: %d vertices, %d edges, traversal from hub vertex %d\n", g.Cols, g.NNZ(), src)

	// The graph algorithms are iterative SpMSpV, so they reuse the SpMSpV
	// model (the controller is oblivious to the running program).
	sw := trainer.DefaultSweep("spmspv", config.CacheMode, 0.2)
	sw.Chip = chip
	ds, err := trainer.Generate(sw, power.EnergyEfficient)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		log.Fatal(err)
	}

	bfsRes, bfsW, err := graph.BFS(g, src, chip.NGPE(), chip.Tiles)
	if err != nil {
		log.Fatal(err)
	}
	ssspRes, ssspW, err := graph.SSSP(g, src, chip.NGPE(), chip.Tiles)
	if err != nil {
		log.Fatal(err)
	}
	report(chip, ens, "bfs", g.Cols, bfsRes, bfsW)
	report(chip, ens, "sssp", g.Cols, ssspRes, ssspW)

	// PageRank: dense frontiers, stable per-iteration behaviour — a
	// contrast workload where adaptation settles quickly.
	pr, prW, err := graph.PageRank(g, 0.85, 1e-6, 10, chip.NGPE(), chip.Tiles)
	if err != nil {
		log.Fatal(err)
	}
	base := core.RunStatic(chip, sim.DefaultBandwidth, config.Baseline, prW, epochScale).Total
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	dyn := core.NewController(ens,
		core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: epochScale}).Run(m, prW)
	top, tr := 0, 0.0
	for v, r := range pr.Rank {
		if r > tr {
			top, tr = v, r
		}
	}
	fmt.Printf("\npagerank: %d iterations (delta %.2g), top vertex %d (rank %.4f)\n",
		pr.Iterations, pr.Delta, top, tr)
	fmt.Printf("  GFLOPS/W gain over baseline: %.2fx (%d reconfigurations)\n",
		dyn.Total.GFLOPSPerW()/base.GFLOPSPerW(), dyn.Reconfig)
}

func report(chip power.Chip, ens *core.Ensemble, algo string, nVerts int, res graph.Result, w kernels.Workload) {
	base := core.RunStatic(chip, sim.DefaultBandwidth, config.Baseline, w, epochScale).Total
	best := core.RunStatic(chip, sim.DefaultBandwidth, config.BestAvgCache, w, epochScale).Total
	m := sim.New(chip, sim.DefaultBandwidth, config.Baseline)
	dyn := core.NewController(ens,
		core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: epochScale}).Run(m, w)

	reached := 0
	for _, d := range res.Dist {
		if !math.IsInf(d, 1) {
			reached++
		}
	}
	fmt.Printf("\n%s: %d iterations, %d edges traversed, %d/%d vertices reached\n",
		algo, res.Iterations, res.Traversed, reached, nVerts)
	fmt.Printf("  %-12s %14s %14s\n", "scheme", "TEPS", "TEPS/W")
	show := func(name string, mt power.Metrics) {
		fmt.Printf("  %-12s %14.0f %14.0f\n", name, res.TEPS(mt.TimeSec), float64(res.Traversed)/mt.EnergyJ)
	}
	show("baseline", base)
	show("best-avg", best)
	show("sparseadapt", dyn.Total)
	fmt.Printf("  TEPS/W gain over baseline: %.2fx (%d reconfigurations)\n",
		base.EnergyJ/dyn.Total.EnergyJ, dyn.Reconfig)
}

func hub(g *matrix.CSC) int {
	best, bn := 0, -1
	for c := 0; c < g.Cols; c++ {
		if n := g.ColPtr[c+1] - g.ColPtr[c]; n > bn {
			best, bn = c, n
		}
	}
	return best
}
