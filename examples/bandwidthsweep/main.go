// Bandwidth sweep: the same trained SparseAdapt model deployed, without
// retraining, across external memory bandwidths spanning four orders of
// magnitude — the cloud-vs-edge scenario of Section 6.5. When the system
// is memory-bound the controller recovers energy by dropping the clock and
// cache sizes; when compute-bound it keeps the hardware large and fast.
//
//	go run ./examples/bandwidthsweep
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

func main() {
	chip := power.Chip{Tiles: 2, GPEsPerTile: 8}
	epochScale := 0.2

	rng := rand.New(rand.NewSource(3))
	a := matrix.RMATDefault(rng, 1024, 16000).ToCSC()
	x := matrix.RandomVec(rng, 1024, 0.5)
	_, w, err := kernels.SpMSpV(a, x, chip.NGPE(), chip.Tiles)
	if err != nil {
		log.Fatal(err)
	}

	// Train once, at the default 1 GB/s-centred sweep.
	sw := trainer.DefaultSweep("spmspv", config.CacheMode, 0.2)
	sw.Chip = chip
	ds, err := trainer.Generate(sw, power.EnergyEfficient)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := trainer.Train(ds, ml.DefaultTreeParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SpMSpV on a power-law matrix, Energy-Efficient mode, one model, no retraining")
	fmt.Printf("%-10s %14s %14s %14s %12s %10s\n",
		"bandwidth", "baseline", "sparseadapt", "gain", "avg-clock", "reconfigs")
	for _, bwGB := range []float64{0.01, 0.1, 1, 10, 100} {
		bw := bwGB * 1e9
		base := core.RunStatic(chip, bw, config.Baseline, w, epochScale).Total
		m := sim.New(chip, bw, config.Baseline)
		dyn := core.NewController(ens,
			core.Options{Policy: core.Hybrid, Tolerance: 0.4, EpochScale: epochScale}).Run(m, w)
		clk := 0.0
		for _, ep := range dyn.Epochs {
			clk += ep.Config.ClockMHz()
		}
		clk /= float64(len(dyn.Epochs))
		fmt.Printf("%7g GB/s %11.3f W⁻¹G %11.3f W⁻¹G %13.2fx %9.0fMHz %10d\n",
			bwGB, base.GFLOPSPerW(), dyn.Total.GFLOPSPerW(),
			dyn.Total.GFLOPSPerW()/base.GFLOPSPerW(), clk, dyn.Reconfig)
	}
	fmt.Println("\nexpected shape: largest gains when memory-bound (low bandwidth), where the")
	fmt.Println("controller trades clock speed for quadratic power savings at no time cost.")
}
