// Package sparseadapt is the public API of the SparseAdapt reproduction: a
// machine-learning runtime controller (MICRO '21, Pal et al., DOI
// 10.1145/3466752.3480134) that reconfigures a simulated Transmuter CGRA —
// cache capacities, sharing modes, prefetcher aggressiveness and DVFS — at
// fine epoch granularity to track the explicit and implicit phases of
// sparse linear algebra.
//
// The facade wraps the internal packages into a small surface:
//
//	sys := sparseadapt.NewSystem(sparseadapt.DefaultSystemConfig())
//	model, _ := sys.Train(sparseadapt.TrainSpec{Kernel: sparseadapt.KernelSpMSpV})
//	w, result, _ := sys.SpMSpV(a, x)                 // functional result + workload
//	run := sys.RunAdaptive(model, w)                  // SparseAdapt control
//	base := sys.RunStatic(sparseadapt.Baseline(), w)  // static comparison
//	fmt.Println(run.Total.GFLOPSPerW() / base.Total.GFLOPSPerW())
//
// Sparse matrices come from the matrix helpers re-exported here
// (NewCOO/Uniform/RMAT/Dataset…). For regenerating the paper's figures and
// tables use cmd/sparseadapt or the internal/experiments registry.
package sparseadapt

import (
	"sparseadapt/internal/config"
	"sparseadapt/internal/core"
	"sparseadapt/internal/graph"
	"sparseadapt/internal/kernels"
	"sparseadapt/internal/matrix"
	"sparseadapt/internal/ml"
	"sparseadapt/internal/power"
	"sparseadapt/internal/sim"
	"sparseadapt/internal/trainer"
)

// Re-exported core types. These aliases are the stable public names; the
// internal packages remain the implementation.
type (
	// COO / CSR / CSC are the sparse matrix formats.
	COO = matrix.COO
	CSR = matrix.CSR
	CSC = matrix.CSC
	// SparseVec is the sparse vector operand of SpMSpV.
	SparseVec = matrix.SparseVec
	// Config is one hardware configuration point (Table 1).
	Config = config.Config
	// Metrics is the (time, energy, FP-ops) result triple.
	Metrics = power.Metrics
	// Mode selects the optimization objective.
	Mode = power.Mode
	// Model is the trained per-parameter decision-tree ensemble.
	Model = core.Ensemble
	// RunResult is a full execution under some control scheme.
	RunResult = core.RunResult
	// Workload is a traced kernel execution replayable under any Config.
	Workload = kernels.Workload
	// GraphResult carries distances and traversal counts of BFS/SSSP.
	GraphResult = graph.Result
	// Policy is a reconfiguration-cost-aware hysteresis scheme (§4.4).
	Policy = core.Policy
)

// Optimization modes (§1).
const (
	EnergyEfficient  = power.EnergyEfficient  // maximize GFLOPS/W
	PowerPerformance = power.PowerPerformance // maximize GFLOPS³/W
)

// Policies (§4.4).
const (
	Conservative = core.Conservative
	Aggressive   = core.Aggressive
	Hybrid       = core.Hybrid
)

// Standard configurations of Table 4.
func Baseline() Config     { return config.Baseline }
func BestAvgCache() Config { return config.BestAvgCache }
func BestAvgSPM() Config   { return config.BestAvgSPM }
func MaxCfg() Config       { return config.MaxCfg }

// Kernel names accepted by TrainSpec.
const (
	KernelSpMSpM = "spmspm"
	KernelSpMSpV = "spmspv"
)

// SystemConfig describes the simulated device.
type SystemConfig struct {
	// Tiles and GPEsPerTile give the machine topology (paper: 2×8).
	Tiles       int
	GPEsPerTile int
	// BandwidthBytesPerSec is the off-chip bandwidth (paper: 1 GB/s).
	BandwidthBytesPerSec float64
	// EpochScale scales the paper's per-kernel epoch sizes (1 = 500
	// FP-ops/GPE for SpMSpV, 5000 for SpMSpM).
	EpochScale float64
}

// DefaultSystemConfig returns the paper's evaluated system (§5.2).
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{Tiles: 2, GPEsPerTile: 8, BandwidthBytesPerSec: sim.DefaultBandwidth, EpochScale: 1}
}

// System is a simulated Transmuter device plus the host runtime around it.
type System struct {
	cfg  SystemConfig
	chip power.Chip
}

// NewSystem validates and builds a System.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Tiles < 1 {
		cfg.Tiles = 2
	}
	if cfg.GPEsPerTile < 1 {
		cfg.GPEsPerTile = 8
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		cfg.BandwidthBytesPerSec = sim.DefaultBandwidth
	}
	if cfg.EpochScale <= 0 {
		cfg.EpochScale = 1
	}
	return &System{cfg: cfg, chip: power.Chip{Tiles: cfg.Tiles, GPEsPerTile: cfg.GPEsPerTile}}
}

// SpMSpM computes C = A·B on the device, returning the result and the
// workload for timing runs. A is CSC, B is CSR (§5.4). The host's dispatch
// step (§3.1) selects the formulation: the outer-product algorithm at the
// paper's density levels, the compressed inner product for small dense
// operands.
func (s *System) SpMSpM(a *CSC, b *CSR) (*CSR, Workload, error) {
	if kernels.ChooseSpMSpM(a, b) == kernels.InnerProduct {
		return kernels.SpMSpMInner(a.ToCSR(), b.ToCSC(), s.chip.NGPE(), s.chip.Tiles)
	}
	return kernels.SpMSpM(a, b, s.chip.NGPE(), s.chip.Tiles)
}

// SpMSpV computes y = A·x on the device.
func (s *System) SpMSpV(a *CSC, x *SparseVec) (*SparseVec, Workload, error) {
	return kernels.SpMSpV(a, x, s.chip.NGPE(), s.chip.Tiles)
}

// BFS runs breadth-first search over adjacency g (column-as-source) from
// src as iterative SpMSpV.
func (s *System) BFS(g *CSC, src int) (GraphResult, Workload, error) {
	return graph.BFS(g, src, s.chip.NGPE(), s.chip.Tiles)
}

// SSSP runs single-source shortest path with edge weights |g[r,c]|.
func (s *System) SSSP(g *CSC, src int) (GraphResult, Workload, error) {
	return graph.SSSP(g, src, s.chip.NGPE(), s.chip.Tiles)
}

// PageRankResult carries converged ranks (see graph.PageRank).
type PageRankResult = graph.PageRankResult

// PageRank computes damped PageRank over adjacency g as traced SpMV
// iterations (damping 0.85, tolerance tol, at most maxIter rounds).
func (s *System) PageRank(g *CSC, damping, tol float64, maxIter int) (PageRankResult, Workload, error) {
	return graph.PageRank(g, damping, tol, maxIter, s.chip.NGPE(), s.chip.Tiles)
}

// TrainSpec configures model training (a scaled Table 3 sweep).
type TrainSpec struct {
	// Kernel is KernelSpMSpM or KernelSpMSpV.
	Kernel string
	// Mode is the optimization objective (default EnergyEfficient).
	Mode Mode
	// SPM trains for the scratchpad L1 variant instead of cache.
	SPM bool
	// Scale shrinks the paper's sweep grid (default 0.3; 1 = Table 3).
	Scale float64
	// Seed makes training deterministic.
	Seed int64
	// CrossValidate grid-searches tree hyperparameters with 3-fold CV.
	CrossValidate bool
}

// Train generates training data on this system and fits the per-parameter
// decision-tree ensemble.
func (s *System) Train(spec TrainSpec) (*Model, error) {
	if spec.Kernel == "" {
		spec.Kernel = KernelSpMSpV
	}
	if spec.Scale <= 0 {
		spec.Scale = 0.3
	}
	l1 := config.CacheMode
	if spec.SPM {
		l1 = config.SPMMode
	}
	sw := trainer.DefaultSweep(spec.Kernel, l1, spec.Scale)
	sw.Chip = s.chip
	if spec.Seed != 0 {
		sw.Seed = spec.Seed
	}
	ds, err := trainer.Generate(sw, spec.Mode)
	if err != nil {
		return nil, err
	}
	if spec.CrossValidate {
		return trainer.TrainCV(ds, []int{6, 10, 14, 18}, []int{1, 5, 20}, 3)
	}
	return trainer.Train(ds, ml.DefaultTreeParams())
}

// ControlOptions tune the runtime controller.
type ControlOptions struct {
	// Policy defaults to Hybrid.
	Policy Policy
	// Tolerance is the hybrid threshold (default 0.4, §5.4).
	Tolerance float64
	// Start is the boot configuration (default Baseline, or BestAvgSPM for
	// SPM-trained models).
	Start *Config
	// History widens the telemetry window (the §7 extension); 0/1 is the
	// published design and requires a model trained with Train; larger
	// windows need a history-trained model.
	History int
}

// RunAdaptive executes the workload under SparseAdapt control.
func (s *System) RunAdaptive(model *Model, w Workload, opts ...ControlOptions) RunResult {
	var o ControlOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.4
	}
	start := config.Baseline
	if o.Start != nil {
		start = *o.Start
	}
	m := sim.New(s.chip, s.cfg.BandwidthBytesPerSec, start)
	copts := core.Options{Policy: o.Policy, Tolerance: o.Tolerance, EpochScale: s.cfg.EpochScale}
	if o.History > 1 {
		return core.NewHistoryController(model, copts, o.History).Run(m, w)
	}
	return core.NewController(model, copts).Run(m, w)
}

// RunStatic executes the workload under a fixed configuration.
func (s *System) RunStatic(cfg Config, w Workload) RunResult {
	return core.RunStatic(s.chip, s.cfg.BandwidthBytesPerSec, cfg, w, s.cfg.EpochScale)
}

// SaveModel / LoadModel persist trained ensembles as JSON.
func SaveModel(path string, m *Model) error { return core.SaveEnsemble(path, m) }

// LoadModel reads a model saved with SaveModel.
func LoadModel(path string) (*Model, error) { return core.LoadEnsemble(path) }

// Matrix construction helpers, re-exported from internal/matrix.
var (
	// NewCOO creates an empty coordinate matrix.
	NewCOO = matrix.NewCOO
	// NewSparseVec builds a sparse vector from index/value slices.
	NewSparseVec = matrix.NewSparseVec
	// Uniform generates a uniform random sparse matrix.
	Uniform = matrix.Uniform
	// RMAT generates a power-law matrix (paper: A=C=0.1, B=0.4).
	RMAT = matrix.RMATDefault
	// RandomVec generates a sparse vector of a given density.
	RandomVec = matrix.RandomVec
)

// DatasetEntry describes one matrix of the paper's Table 5 suite.
type DatasetEntry = matrix.DatasetEntry

// Dataset lists the Table 5 evaluation suite (synthetic U/P plus
// real-world stand-ins R01–R16); each entry Generates at any scale.
func Dataset() []DatasetEntry { return matrix.Dataset }
